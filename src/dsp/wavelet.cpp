#include "dsp/wavelet.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "dsp/fft.h"
#include "obs/profile.h"
#include "util/check.h"
#include "util/error.h"

namespace sid::dsp {

std::vector<double> cwt_frequencies(const CwtConfig& config) {
  util::require(config.num_scales >= 2, "cwt: need at least two scales");
  util::require(config.min_frequency_hz > 0.0 &&
                    config.max_frequency_hz > config.min_frequency_hz,
                "cwt: bad frequency range");
  util::require(config.max_frequency_hz <= config.sample_rate_hz / 2.0,
                "cwt: max frequency above Nyquist");
  std::vector<double> freqs(config.num_scales);
  const double log_lo = std::log(config.min_frequency_hz);
  const double log_hi = std::log(config.max_frequency_hz);
  for (std::size_t i = 0; i < config.num_scales; ++i) {
    const double t = static_cast<double>(i) /
                     static_cast<double>(config.num_scales - 1);
    freqs[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  return freqs;
}

Scalogram cwt_morlet(std::span<const double> signal, const CwtConfig& config) {
  SID_PROFILE_STAGE(obs::Stage::kWavelet);
  util::require(!signal.empty(), "cwt_morlet: empty signal");
  const auto freqs = cwt_frequencies(config);

  Scalogram out;
  out.config = config;
  out.frequencies_hz = freqs;
  out.samples = signal.size();
  out.power.resize(freqs.size());

  // FFT of the (zero-padded) signal, reused across scales.
  const std::size_t n = next_power_of_two(2 * signal.size());
  std::vector<std::complex<double>> sig_fft(n);
  for (std::size_t i = 0; i < signal.size(); ++i) sig_fft[i] = signal[i];
  fft_inplace(sig_fft);

  const double dt = 1.0 / config.sample_rate_hz;
  const double norm_const = std::pow(std::numbers::pi, -0.25);

  for (std::size_t si = 0; si < freqs.size(); ++si) {
    // scale (in seconds) for pseudo-frequency f: s = w0 / (2*pi*f)
    const double scale_s = config.omega0 / (2.0 * std::numbers::pi * freqs[si]);

    // Frequency-domain Morlet: psi_hat(w) = pi^{-1/4} * H(w) *
    //   exp(-(s*w - w0)^2 / 2), evaluated at the FFT angular frequencies.
    // Multiplying by sqrt(2*pi*s/dt) gives the standard L2 normalization
    // (Torrence & Compo 1998).
    const double amp = norm_const * std::sqrt(2.0 * std::numbers::pi *
                                              scale_s / dt);
    std::vector<std::complex<double>> prod(n);
    for (std::size_t k = 0; k < n; ++k) {
      // Angular frequency of bin k (rad/s); negative for the upper half.
      double w = 2.0 * std::numbers::pi * static_cast<double>(k) /
                 (static_cast<double>(n) * dt);
      if (k > n / 2) {
        w -= 2.0 * std::numbers::pi / dt;
      }
      if (w <= 0.0) continue;  // analytic wavelet: zero for w <= 0
      const double arg = scale_s * w - config.omega0;
      const double psi_hat = amp * std::exp(-0.5 * arg * arg);
      prod[k] = sig_fft[k] * psi_hat;
    }
    ifft_inplace(prod);
    auto& row = out.power[si];
    row.resize(signal.size());
    for (std::size_t t = 0; t < signal.size(); ++t) {
      row[t] = std::norm(prod[t]);
    }
    SID_DCHECK_FINITE(row, "cwt_morlet scalogram row");
  }
  return out;
}

double Scalogram::band_energy(double lo_hz, double hi_hz) const {
  double sum = 0.0;
  for (std::size_t si = 0; si < frequencies_hz.size(); ++si) {
    if (frequencies_hz[si] < lo_hz || frequencies_hz[si] >= hi_hz) continue;
    for (double p : power[si]) sum += p;
  }
  return sum;
}

double Scalogram::total_energy() const {
  double sum = 0.0;
  for (const auto& row : power) {
    for (double p : row) sum += p;
  }
  return sum;
}

double Scalogram::dominant_frequency() const {
  util::require_state(!power.empty(), "Scalogram::dominant_frequency: empty");
  double best_energy = -1.0;
  double best_freq = 0.0;
  for (std::size_t si = 0; si < power.size(); ++si) {
    double row_sum = 0.0;
    for (double p : power[si]) row_sum += p;
    if (row_sum > best_energy) {
      best_energy = row_sum;
      best_freq = frequencies_hz[si];
    }
  }
  return best_freq;
}

}  // namespace sid::dsp
