// Averaged spectral estimation (Welch's method).
//
// Used for stable spectrum estimates of long ocean records (sea-state
// verification in tests and the wave_lab example); single STFT frames are
// too noisy to validate a synthesized spectrum against its target shape.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.h"

namespace sid::dsp {

struct WelchConfig {
  std::size_t segment_size = 1024;  ///< power of two
  std::size_t overlap = 512;        ///< samples shared by adjacent segments
  WindowType window = WindowType::kHann;
  double sample_rate_hz = 50.0;
};

struct PsdEstimate {
  std::vector<double> frequency_hz;  ///< bins 0..segment/2
  std::vector<double> psd;           ///< power spectral density, unit^2/Hz
  std::size_t segments_averaged = 0;

  /// Frequency of the largest PSD bin excluding DC.
  double peak_frequency_hz() const;
  /// Integrated power (variance) in [lo, hi) Hz by the rectangle rule.
  double band_power(double lo_hz, double hi_hz) const;
};

/// Welch PSD of a real signal.
///
/// Framing contract: segments start at 0, hop, 2*hop, … (hop =
/// segment_size - overlap) and only segments that fit entirely inside the
/// signal are averaged. Trailing samples past the last full segment are
/// therefore excluded from the estimate; the count of such samples is
/// added to the obs counter "dsp.tail_samples_dropped"
/// (obs::dsp_tail_dropped_counter) so silent truncation is observable.
/// Throws util::InvalidArgument when the signal is shorter than one
/// segment or the config is inconsistent.
PsdEstimate welch_psd(std::span<const double> signal,
                      const WelchConfig& config);

}  // namespace sid::dsp
