#!/usr/bin/env bash
# clang-format over the C++ tree (.clang-format at the repo root).
#
#   scripts/format.sh          # reformat in place
#   scripts/format.sh --check  # verify only; non-zero exit on drift (CI)
#
# Skips with a warning (exit 0) when clang-format is not installed, so the
# script is safe to call from environments that only have the compiler.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="$(command -v clang-format || command -v clang-format-18 || command -v clang-format-17 || true)"
if [ -z "$CLANG_FORMAT" ]; then
  echo "format.sh: clang-format not found, skipping" >&2
  exit 0
fi

mapfile -t FILES < <(find src tests bench examples -name '*.h' -o -name '*.cpp' | sort)

if [ "${1:-}" = "--check" ]; then
  "$CLANG_FORMAT" --dry-run -Werror "${FILES[@]}"
  echo "format.sh: ${#FILES[@]} files clean"
else
  "$CLANG_FORMAT" -i "${FILES[@]}"
  echo "format.sh: formatted ${#FILES[@]} files"
fi
