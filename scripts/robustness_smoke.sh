#!/usr/bin/env bash
# Robustness smoke: build with ASan/UBSan and exercise the fault-injection
# layer end to end — the fault unit/system tests plus the tiny-grid
# robustness sweep (which self-checks that its detection curve is
# monotone-sane and exits non-zero otherwise).
#
# Usage: scripts/robustness_smoke.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSID_SANITIZE=ON
cmake --build "${build_dir}" -j \
  --target faults_test selfheal_test system_test robustness_sweep

"${build_dir}/tests/faults_test"
"${build_dir}/tests/selfheal_test"
"${build_dir}/tests/system_test" \
  --gtest_filter='SidSystemTest.TwentyPercentNodeFailuresStillReachSinkViaFallback'
"${build_dir}/bench/robustness_sweep" --smoke

echo "robustness smoke: OK"
