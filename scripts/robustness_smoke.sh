#!/usr/bin/env bash
# Robustness smoke: build with ASan/UBSan and exercise the fault-injection
# and adversarial layers end to end — the fault/defense unit and system
# tests plus the tiny-grid robustness and adversary sweeps (each
# self-checks its acceptance gate — monotone-sane detection curve,
# defended-vs-undefended recall gap, zero false quarantines on honest
# fields, fused recall at least each single modality with zero forged
# acoustic acceptances — and exits non-zero otherwise).
#
# Usage: scripts/robustness_smoke.sh [build-dir]   (default: build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSID_SANITIZE=ON
cmake --build "${build_dir}" -j \
  --target faults_test selfheal_test defense_test system_test \
  fusion_test robustness_sweep adversary_sweep fusion_ablation

"${build_dir}/tests/faults_test"
"${build_dir}/tests/selfheal_test"
"${build_dir}/tests/defense_test"
"${build_dir}/tests/system_test" \
  --gtest_filter='SidSystemTest.TwentyPercentNodeFailuresStillReachSinkViaFallback'
"${build_dir}/tests/fusion_test"
"${build_dir}/bench/robustness_sweep" --smoke
"${build_dir}/bench/adversary_sweep" --smoke
"${build_dir}/bench/fusion_ablation" --smoke

echo "robustness smoke: OK"
