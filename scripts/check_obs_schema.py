#!/usr/bin/env python3
"""Schema check for SID observability artifacts (CI gate).

Validates:
  * a sid-metrics-v1 metrics/profile dump (Registry::write_json output:
    sid_cli --metrics-out, perf_detector/perf_dsp --smoke BENCH_*.json)
  * optionally, a JSONL event trace (obs::Tracer / sid_cli --trace-out),
    including embedded span records ({"span":{"id":...,"dur":...}})
  * optionally, a sid-telemetry-v1 JSONL series
    (sid_cli --telemetry-out)
  * optionally, a sid-flightrec-v1 JSONL dump (sid_cli --flightrec-out
    or a crash/quarantine auto-dump)

Usage:
    check_obs_schema.py BENCH_detector.json [--trace trace.jsonl]
        [--require-stage detector] [--min-trace-events 1]
        [--min-span-events 1]
        [--require-counter net.e2e_retries]
        [--require-histogram sid.recovery_time_s]
        [--telemetry telemetry.jsonl] [--require-series sid.alarms_raised]
        [--flightrec flightrec.jsonl]

Exit status: 0 valid, 1 schema violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "sid-metrics-v1"
TELEMETRY_SCHEMA = "sid-telemetry-v1"
FLIGHTREC_SCHEMA = "sid-flightrec-v1"
TRACE_CATEGORIES = {"net", "node", "cluster", "sink", "energy", "fault",
                    "defense"}
SPAN_ID_HEX_LEN = 16
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "mean",
                  "p50", "p95", "p99", "buckets"}


class SchemaError(Exception):
    pass


def fail(context: str, message: str):
    raise SchemaError(f"{context}: {message}")


def check_histogram(name: str, h):
    if not isinstance(h, dict):
        fail(name, "histogram is not an object")
    missing = HISTOGRAM_KEYS - h.keys()
    if missing:
        fail(name, f"missing keys {sorted(missing)}")
    if not isinstance(h["count"], int) or h["count"] < 0:
        fail(name, "count must be a non-negative integer")
    for key in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
        if not isinstance(h[key], (int, float)):
            fail(name, f"{key} must be a number")
    buckets = h["buckets"]
    if not isinstance(buckets, list) or len(buckets) < 2:
        fail(name, "buckets must be a list with at least one bound + inf")
    if buckets[-1].get("le") != "inf":
        fail(name, "last bucket must have le == \"inf\"")
    prev = None
    total = 0
    for i, b in enumerate(buckets):
        if not isinstance(b, dict) or "le" not in b or "count" not in b:
            fail(name, f"bucket {i} must have le and count")
        if not isinstance(b["count"], int) or b["count"] < 0:
            fail(name, f"bucket {i} count must be a non-negative integer")
        total += b["count"]
        le = b["le"]
        if le != "inf":
            if not isinstance(le, (int, float)):
                fail(name, f"bucket {i} le must be a number or \"inf\"")
            if prev is not None and le <= prev:
                fail(name, f"bucket bounds not ascending at index {i}")
            prev = le
        elif i != len(buckets) - 1:
            fail(name, "\"inf\" bucket must be last")
    if total != h["count"]:
        fail(name, f"bucket counts sum to {total}, count says {h['count']}")
    if h["count"] > 0 and not (h["min"] <= h["p50"] <= h["max"]):
        fail(name, "p50 outside [min, max]")


def check_metrics(path: Path, require_stages: list[str],
                  require_counters: list[str] = [],
                  require_histograms: list[str] = []):
    with path.open(encoding="utf-8") as fh:
        doc = json.load(fh)
    ctx = str(path)
    if not isinstance(doc, dict):
        fail(ctx, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(ctx, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(ctx, f"missing object section {section!r}")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{ctx}:{name}", "counter must be a non-negative integer")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"{ctx}:{name}", "gauge must be a number")
    profile = doc.get("profile", {})
    if not isinstance(profile, dict):
        fail(ctx, "profile section must be an object")
    for name, h in list(doc["histograms"].items()) + list(profile.items()):
        check_histogram(f"{ctx}:{name}", h)
    for stage in require_stages:
        name = f"profile.{stage}_ns"
        if name not in profile:
            fail(ctx, f"required stage histogram {name!r} missing")
        if profile[name]["count"] == 0:
            fail(ctx, f"required stage histogram {name!r} is empty")
    for name in require_counters:
        if name not in doc["counters"]:
            fail(ctx, f"required counter {name!r} missing")
    for name in require_histograms:
        if name not in doc["histograms"]:
            fail(ctx, f"required histogram {name!r} missing")
    n_hist = len(doc["histograms"]) + len(profile)
    print(f"{path}: OK ({len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {n_hist} histograms)")


def check_event(ctx: str, record) -> bool:
    """Validates one trace/flight-recorder event line. Returns True when
    the event carries a span record."""
    if not isinstance(record, dict):
        fail(ctx, "event is not an object")
    if not isinstance(record.get("t"), (int, float)):
        fail(ctx, "t must be a number (simulation seconds)")
    if record.get("cat") not in TRACE_CATEGORIES:
        fail(ctx, f"unknown category {record.get('cat')!r}")
    if not isinstance(record.get("name"), str) or not record["name"]:
        fail(ctx, "name must be a non-empty string")
    if not isinstance(record.get("args"), dict):
        fail(ctx, "args must be an object")
    span = record.get("span")
    if span is None:
        return False
    if not isinstance(span, dict):
        fail(ctx, "span must be an object")
    span_id = span.get("id")
    if (not isinstance(span_id, str) or len(span_id) != SPAN_ID_HEX_LEN
            or any(c not in "0123456789abcdef" for c in span_id)):
        fail(ctx, f"span id must be {SPAN_ID_HEX_LEN} lowercase hex digits")
    dur = span.get("dur")
    if not isinstance(dur, (int, float)) or dur < 0:
        fail(ctx, "span dur must be a non-negative number")
    return True


def check_trace(path: Path, min_events: int, min_span_events: int = 0):
    n = 0
    n_spans = 0
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            ctx = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                fail(ctx, f"not valid JSON: {err}")
            if check_event(ctx, record):
                n_spans += 1
            n += 1
    if n < min_events:
        fail(str(path), f"only {n} events, expected at least {min_events}")
    if n_spans < min_span_events:
        fail(str(path),
             f"only {n_spans} span events, expected at least "
             f"{min_span_events}")
    print(f"{path}: OK ({n} trace events, {n_spans} span records)")


def check_telemetry(path: Path, require_series: list[str]):
    with path.open(encoding="utf-8") as fh:
        lines = [line.strip() for line in fh if line.strip()]
    ctx = str(path)
    if not lines:
        fail(ctx, "empty telemetry file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as err:
        fail(f"{ctx}:1", f"not valid JSON: {err}")
    if not isinstance(header, dict):
        fail(f"{ctx}:1", "header is not an object")
    if header.get("schema") != TELEMETRY_SCHEMA:
        fail(ctx, f"schema is {header.get('schema')!r}, "
                  f"expected {TELEMETRY_SCHEMA!r}")
    interval = header.get("interval_s")
    if not isinstance(interval, (int, float)) or interval <= 0:
        fail(ctx, "interval_s must be a positive number")
    for key in ("samples", "rows"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            fail(ctx, f"{key} must be a non-negative integer")
    for key in ("counters", "gauges"):
        names = header.get(key)
        if (not isinstance(names, list)
                or any(not isinstance(x, str) for x in names)):
            fail(ctx, f"{key} must be a list of names")
    counters = set(header["counters"])
    gauges = set(header["gauges"])
    for name in require_series:
        if name not in counters and name not in gauges:
            fail(ctx, f"required series {name!r} missing from header")
    rows = lines[1:]
    if len(rows) != header["rows"]:
        fail(ctx, f"header says {header['rows']} rows, file has {len(rows)}")
    prev_t = None
    for i, line in enumerate(rows, start=2):
        rctx = f"{ctx}:{i}"
        try:
            row = json.loads(line)
        except json.JSONDecodeError as err:
            fail(rctx, f"not valid JSON: {err}")
        if not isinstance(row, dict):
            fail(rctx, "row is not an object")
        t = row.get("t")
        if not isinstance(t, (int, float)):
            fail(rctx, "t must be a number")
        if prev_t is not None and t <= prev_t:
            fail(rctx, "row times must be strictly increasing")
        prev_t = t
        for section, names in (("counters", counters), ("gauges", gauges)):
            values = row.get(section)
            if not isinstance(values, dict):
                fail(rctx, f"{section} must be an object")
            for name, value in values.items():
                if name not in names:
                    fail(rctx, f"{section} key {name!r} not in header")
                if section == "counters":
                    if not isinstance(value, int) or value < 0:
                        fail(f"{rctx}:{name}",
                             "counter must be a non-negative integer")
                elif not isinstance(value, (int, float)):
                    fail(f"{rctx}:{name}", "gauge must be a number")
    print(f"{path}: OK ({len(rows)} telemetry rows, "
          f"{len(counters)} counters, {len(gauges)} gauges)")


def check_flightrec(path: Path):
    with path.open(encoding="utf-8") as fh:
        lines = [line.strip() for line in fh if line.strip()]
    ctx = str(path)
    if not lines:
        fail(ctx, "empty flight-recorder file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as err:
        fail(f"{ctx}:1", f"not valid JSON: {err}")
    if not isinstance(header, dict):
        fail(f"{ctx}:1", "header is not an object")
    if header.get("schema") != FLIGHTREC_SCHEMA:
        fail(ctx, f"schema is {header.get('schema')!r}, "
                  f"expected {FLIGHTREC_SCHEMA!r}")
    if not isinstance(header.get("reason"), str) or not header["reason"]:
        fail(ctx, "reason must be a non-empty string")
    for key in ("capacity", "recorded", "events"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            fail(ctx, f"{key} must be a non-negative integer")
    events = lines[1:]
    if len(events) != header["events"]:
        fail(ctx,
             f"header says {header['events']} events, file has {len(events)}")
    if header["recorded"] < header["events"]:
        fail(ctx, "recorded total below retained event count")
    n_spans = 0
    for i, line in enumerate(events, start=2):
        ectx = f"{ctx}:{i}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            fail(ectx, f"not valid JSON: {err}")
        if check_event(ectx, record):
            n_spans += 1
    print(f"{path}: OK ({len(events)} flight-recorder events, "
          f"{n_spans} span records, reason={header['reason']!r})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", type=Path,
                        help="sid-metrics-v1 JSON dump to validate")
    parser.add_argument("--trace", type=Path,
                        help="JSONL event trace to validate as well")
    parser.add_argument("--require-stage", action="append", default=[],
                        metavar="STAGE",
                        help="require a non-empty profile.<STAGE>_ns "
                             "histogram (repeatable)")
    parser.add_argument("--min-trace-events", type=int, default=1,
                        help="minimum events the trace must contain")
    parser.add_argument("--min-span-events", type=int, default=0,
                        help="minimum span records the trace must contain")
    parser.add_argument("--telemetry", type=Path,
                        help="sid-telemetry-v1 JSONL series to validate")
    parser.add_argument("--require-series", action="append", default=[],
                        metavar="NAME",
                        help="require the telemetry header to list this "
                             "counter/gauge series (repeatable)")
    parser.add_argument("--flightrec", type=Path,
                        help="sid-flightrec-v1 JSONL dump to validate")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="require a counter with this exact name, e.g. "
                             "the self-healing set net.e2e_retries / "
                             "net.route_repairs / net.false_suspicions "
                             "(repeatable)")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="require a (sim-clock) histogram with this "
                             "name, e.g. sid.recovery_time_s (repeatable)")
    args = parser.parse_args()
    try:
        check_metrics(args.metrics, args.require_stage,
                      args.require_counter, args.require_histogram)
        if args.trace:
            check_trace(args.trace, args.min_trace_events,
                        args.min_span_events)
        if args.telemetry:
            check_telemetry(args.telemetry, args.require_series)
        if args.flightrec:
            check_flightrec(args.flightrec)
    except SchemaError as err:
        print(f"schema violation — {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
