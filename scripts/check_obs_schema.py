#!/usr/bin/env python3
"""Schema check for SID observability artifacts (CI gate).

Validates:
  * a sid-metrics-v1 metrics/profile dump (Registry::write_json output:
    sid_cli --metrics-out, perf_detector/perf_dsp --smoke BENCH_*.json)
  * optionally, a JSONL event trace (obs::Tracer / sid_cli --trace-out)

Usage:
    check_obs_schema.py BENCH_detector.json [--trace trace.jsonl]
        [--require-stage detector] [--min-trace-events 1]
        [--require-counter net.e2e_retries]
        [--require-histogram sid.recovery_time_s]

Exit status: 0 valid, 1 schema violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "sid-metrics-v1"
TRACE_CATEGORIES = {"net", "node", "cluster", "sink", "energy", "fault"}
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "mean",
                  "p50", "p95", "p99", "buckets"}


class SchemaError(Exception):
    pass


def fail(context: str, message: str):
    raise SchemaError(f"{context}: {message}")


def check_histogram(name: str, h):
    if not isinstance(h, dict):
        fail(name, "histogram is not an object")
    missing = HISTOGRAM_KEYS - h.keys()
    if missing:
        fail(name, f"missing keys {sorted(missing)}")
    if not isinstance(h["count"], int) or h["count"] < 0:
        fail(name, "count must be a non-negative integer")
    for key in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
        if not isinstance(h[key], (int, float)):
            fail(name, f"{key} must be a number")
    buckets = h["buckets"]
    if not isinstance(buckets, list) or len(buckets) < 2:
        fail(name, "buckets must be a list with at least one bound + inf")
    if buckets[-1].get("le") != "inf":
        fail(name, "last bucket must have le == \"inf\"")
    prev = None
    total = 0
    for i, b in enumerate(buckets):
        if not isinstance(b, dict) or "le" not in b or "count" not in b:
            fail(name, f"bucket {i} must have le and count")
        if not isinstance(b["count"], int) or b["count"] < 0:
            fail(name, f"bucket {i} count must be a non-negative integer")
        total += b["count"]
        le = b["le"]
        if le != "inf":
            if not isinstance(le, (int, float)):
                fail(name, f"bucket {i} le must be a number or \"inf\"")
            if prev is not None and le <= prev:
                fail(name, f"bucket bounds not ascending at index {i}")
            prev = le
        elif i != len(buckets) - 1:
            fail(name, "\"inf\" bucket must be last")
    if total != h["count"]:
        fail(name, f"bucket counts sum to {total}, count says {h['count']}")
    if h["count"] > 0 and not (h["min"] <= h["p50"] <= h["max"]):
        fail(name, "p50 outside [min, max]")


def check_metrics(path: Path, require_stages: list[str],
                  require_counters: list[str] = [],
                  require_histograms: list[str] = []):
    with path.open(encoding="utf-8") as fh:
        doc = json.load(fh)
    ctx = str(path)
    if not isinstance(doc, dict):
        fail(ctx, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(ctx, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(ctx, f"missing object section {section!r}")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{ctx}:{name}", "counter must be a non-negative integer")
    for name, value in doc["gauges"].items():
        if not isinstance(value, (int, float)):
            fail(f"{ctx}:{name}", "gauge must be a number")
    profile = doc.get("profile", {})
    if not isinstance(profile, dict):
        fail(ctx, "profile section must be an object")
    for name, h in list(doc["histograms"].items()) + list(profile.items()):
        check_histogram(f"{ctx}:{name}", h)
    for stage in require_stages:
        name = f"profile.{stage}_ns"
        if name not in profile:
            fail(ctx, f"required stage histogram {name!r} missing")
        if profile[name]["count"] == 0:
            fail(ctx, f"required stage histogram {name!r} is empty")
    for name in require_counters:
        if name not in doc["counters"]:
            fail(ctx, f"required counter {name!r} missing")
    for name in require_histograms:
        if name not in doc["histograms"]:
            fail(ctx, f"required histogram {name!r} missing")
    n_hist = len(doc["histograms"]) + len(profile)
    print(f"{path}: OK ({len(doc['counters'])} counters, "
          f"{len(doc['gauges'])} gauges, {n_hist} histograms)")


def check_trace(path: Path, min_events: int):
    n = 0
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            ctx = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                fail(ctx, f"not valid JSON: {err}")
            if not isinstance(record, dict):
                fail(ctx, "event is not an object")
            if not isinstance(record.get("t"), (int, float)):
                fail(ctx, "t must be a number (simulation seconds)")
            if record.get("cat") not in TRACE_CATEGORIES:
                fail(ctx, f"unknown category {record.get('cat')!r}")
            if not isinstance(record.get("name"), str) or not record["name"]:
                fail(ctx, "name must be a non-empty string")
            if not isinstance(record.get("args"), dict):
                fail(ctx, "args must be an object")
            n += 1
    if n < min_events:
        fail(str(path), f"only {n} events, expected at least {min_events}")
    print(f"{path}: OK ({n} trace events)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", type=Path,
                        help="sid-metrics-v1 JSON dump to validate")
    parser.add_argument("--trace", type=Path,
                        help="JSONL event trace to validate as well")
    parser.add_argument("--require-stage", action="append", default=[],
                        metavar="STAGE",
                        help="require a non-empty profile.<STAGE>_ns "
                             "histogram (repeatable)")
    parser.add_argument("--min-trace-events", type=int, default=1,
                        help="minimum events the trace must contain")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="require a counter with this exact name, e.g. "
                             "the self-healing set net.e2e_retries / "
                             "net.route_repairs / net.false_suspicions "
                             "(repeatable)")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="require a (sim-clock) histogram with this "
                             "name, e.g. sid.recovery_time_s (repeatable)")
    args = parser.parse_args()
    try:
        check_metrics(args.metrics, args.require_stage,
                      args.require_counter, args.require_histogram)
        if args.trace:
            check_trace(args.trace, args.min_trace_events)
    except SchemaError as err:
        print(f"schema violation — {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
