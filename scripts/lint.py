#!/usr/bin/env python3
"""Repo-invariant lint for the SID reproduction.

Enforces the discipline clang-tidy cannot express:

  rng-source        no std::random_device, rand()/srand(), ad-hoc
                    std::mt19937 seeding or wall-clock reads outside
                    src/util/rng.h — every stochastic stream must derive
                    from the single master seed (see DESIGN.md).
  pragma-once       every header starts translation with #pragma once.
  header-using      no `using namespace` at header scope.
  protocol-literal  no float/double literal in a protocol message struct
                    (src/wsn/messages.h) whose decimal text is not exactly
                    representable in binary — inexact defaults would break
                    bit-identical replay of recorded decision streams.
  raw-io            no raw std::cout/std::cerr/printf-family output in
                    src/ outside src/obs/ and src/util/table.* — library
                    code reports through the metrics registry, the event
                    tracer, or returned values, never by printing.
  oracle-liveness   no protocol code reads the global liveness oracle
                    (node_operational) or the radio's ground-truth PRR
                    outside the physical delivery layer itself
                    (src/wsn/network.*, src/wsn/radio.*). Routing,
                    clustering and fallback decisions must rely on
                    in-band evidence only: can_execute (self), beacons,
                    suspicion (suspects()), and reliable-transport
                    outcomes (kGaveUp).
  thread-funnel     no raw std::thread/std::jthread/std::async outside
                    src/util/parallel.* — all concurrency goes through
                    util::ThreadPool/parallel_for, whose deterministic
                    static chunking is what keeps parallel runs
                    bit-identical to serial (DESIGN.md §5g). Ad-hoc
                    threads would reintroduce schedule-dependent
                    behaviour the determinism suite cannot pin.
  mutex-funnel      no raw std::mutex/lock_guard/unique_lock/scoped_lock/
                    shared_mutex/condition_variable outside
                    src/util/thread_annotations.h — all locking goes
                    through the annotated util::Mutex/LockGuard/CondVar
                    wrappers so Clang's -Wthread-safety capability
                    analysis sees every acquisition (DESIGN.md §5i). A
                    raw primitive would be invisible to the analysis and
                    silently un-checked.
  defense-funnel    no NeighborTable or quarantine/ledger state mutated
                    outside src/wsn/ — link beliefs and suspicion
                    verdicts are delivery-layer evidence (DESIGN.md
                    §5h). Higher layers (src/core/...) consume them
                    through read-only views (suspects, quarantine_view,
                    guard_ledger) and the quarantine listener; letting
                    protocol code poke the tables/ledgers directly would
                    bypass the admission funnel the defense audits.
  spatial-funnel    no all-pairs triangular scan (`for (j = i + 1; j < N`)
                    in src/ outside src/wsn/spatial_index.* — range and
                    neighborhood queries go through the uniform-grid
                    SpatialIndex (DESIGN.md §5l), whose grid==brute-force
                    property test keeps results byte-identical to the
                    historical O(N^2) loops. A fresh pairwise scan would
                    quietly reintroduce the quadratic wall the fleet_sweep
                    bench exists to keep down. (Tests and benches may
                    brute-force freely: they are the oracle the index is
                    checked against.)
  span-funnel       no direct Tracer::emit_span call in src/ outside
                    src/obs/ — span records are emitted through the
                    SID_SPAN macro only (obs/span.h), so the
                    SID_ENABLE_METRICS=OFF build compiles every site
                    away and the noop suite can prove it. A direct call
                    would survive the metrics-off build and re-introduce
                    tracing cost the flag promises to remove.

Exit status: 0 clean, 1 violations found, 2 internal error.

A line can opt out of one rule with a trailing `// lint:allow <rule>`.
`--self-test` plants one violation per rule in a temp tree and verifies
each is caught (wired into ctest as `lint_selftest`).
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from fractions import Fraction
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "bench", "examples")
CXX_SUFFIXES = {".h", ".cpp"}

# Files allowed to touch raw entropy sources: the single seed funnel.
RNG_ALLOWED = {Path("src/util/rng.h"), Path("src/util/rng.cpp")}

PROTOCOL_HEADERS = {Path("src/wsn/messages.h")}

# Library code must stay silent: only the observability layer and the
# table formatter may write to stdout/stderr. The rule covers src/ only —
# tests, benches and examples are user-facing programs.
RAW_IO_ALLOWED_PREFIXES = ("src/obs/", "src/util/table")

# The liveness/PRR oracle funnel: ground truth about other nodes (alive?
# true link PRR?) exists only inside the physical delivery layer. Tests
# and benches may consult it freely (they assert against ground truth);
# protocol code in src/ may not.
ORACLE_ALLOWED = {
    Path("src/wsn/network.h"), Path("src/wsn/network.cpp"),
    Path("src/wsn/radio.h"), Path("src/wsn/radio.cpp"),
}

ORACLE_PATTERNS = (
    re.compile(r"(?<![A-Za-z0-9_])node_operational\s*\("),
    re.compile(r"(?<![A-Za-z0-9_])prr\s*\("),
)

# The concurrency funnel: only the deterministic thread pool may spawn
# threads. (std::this_thread is fine — the pattern requires `thread` right
# after `std::`.)
THREAD_ALLOWED = {
    Path("src/util/parallel.h"), Path("src/util/parallel.cpp"),
}

THREAD_PATTERNS = (
    re.compile(r"std\s*::\s*j?thread\b"),
    re.compile(r"std\s*::\s*async\b"),
)

# The locking funnel: only the annotated wrappers may name the std
# primitives, so every lock the program takes is visible to Clang's
# capability analysis. (std::atomic is fine — lock-free state is part of
# the documented contract, not hidden from the analysis.)
MUTEX_ALLOWED = {
    Path("src/util/thread_annotations.h"),
}

MUTEX_PATTERNS = (
    re.compile(r"std\s*::\s*(?:recursive_|timed_|shared_)?mutex\b"),
    re.compile(r"std\s*::\s*(?:lock_guard|unique_lock|scoped_lock"
               r"|shared_lock)\b"),
    re.compile(r"std\s*::\s*condition_variable(?:_any)?\b"),
)

# The defense funnel: neighbor-table and quarantine/ledger state mutators
# may only be called from the delivery layer (src/wsn/). Everything in
# src/ outside it is checked; tests and benches may drive them directly.
DEFENSE_FUNNEL_PREFIX = "src/wsn/"

DEFENSE_FUNNEL_PATTERNS = (
    # NeighborTable mutators (link beliefs are delivery-layer evidence).
    re.compile(r"\.\s*(?:on_beacon|on_tx_success|on_tx_failure"
               r"|boot_neighbor|sweep)\s*\("),
    # GuardLedger / quarantine-view mutators (both admission funnels:
    # accel reports/decisions and acoustic contact reports).
    re.compile(r"\.\s*(?:assess(?:_acoustic)?|apply_notice)\s*\("),
)

# The spatial funnel: production range queries go through the grid index.
# Only its own implementation may write pairwise scans; tests and benches
# are out of scope (they brute-force as the correctness/perf oracle).
SPATIAL_ALLOWED = {
    Path("src/wsn/spatial_index.h"), Path("src/wsn/spatial_index.cpp"),
}

SPATIAL_PATTERNS = (
    # The triangular inner loop of an all-pairs scan: `j` starts one past
    # another index and walks the rest of the collection.
    re.compile(r"for\s*\(\s*(?:[\w:<>]+\s+)?(\w+)\s*=\s*\w+\s*\+\s*1\s*;"
               r"\s*\1\s*<"),
)

# The span funnel: only the obs layer itself (the macro's implementation
# and its tests live there) may name Tracer::emit_span. Call sites in the
# rest of src/ must go through SID_SPAN; the macro text at a call site
# never contains `->emit_span(` pre-expansion, so the pattern only fires
# on hand-written direct calls. Tests/benches drive the API directly.
SPAN_FUNNEL_PREFIX = "src/obs/"

SPAN_FUNNEL_PATTERNS = (
    re.compile(r"(?:\.|->)\s*emit_span\s*\("),
)

ALLOW_RE = re.compile(r"//\s*lint:allow\s+([a-z-]+)")

RNG_PATTERNS = (
    re.compile(r"std\s*::\s*random_device"),
    re.compile(r"(?<![A-Za-z0-9_])s?rand\s*\("),
    re.compile(r"std\s*::\s*mt19937(?:_64)?\b"),
    re.compile(r"(?<![A-Za-z0-9_])time\s*\("),  # std::time / time(NULL)
    re.compile(r"(?<![A-Za-z0-9_])gettimeofday\s*\("),
    re.compile(r"(?:system|steady|high_resolution)_clock\s*::\s*now"),
)

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")

RAW_IO_PATTERNS = (
    re.compile(r"std\s*::\s*(cout|cerr)\b"),
    # printf/fprintf/puts/fputs; the lookbehind keeps snprintf (string
    # formatting, no output) out of scope.
    re.compile(r"(?<![A-Za-z0-9_])(?:f?printf|f?puts)\s*\("),
)

FLOAT_LITERAL_RE = re.compile(
    r"(?<![\w.])(\d+\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)[fF]?(?![\w.])"
)


def strip_comments_and_strings(line: str) -> str:
    """Blanks out // comments and string/char literals (single line only —
    good enough for this codebase, which has no multi-line raw strings in
    the linted dirs)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def is_exact_decimal(text: str) -> bool:
    """True when the decimal literal's value is exactly representable as an
    IEEE-754 double (e.g. 0.5, -1.0, 2.25 — but not 0.1 or 3.3)."""
    return Fraction(float(text)) == Fraction(text)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[str] = []

    def report(self, rule: str, path: Path, lineno: int, detail: str):
        rel = path.relative_to(self.root)
        self.violations.append(f"{rel}:{lineno}: [{rule}] {detail}")

    def lint_file(self, path: Path):
        rel = path.relative_to(self.root)
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            raise RuntimeError(f"cannot read {rel}: {err}") from err
        lines = text.splitlines()

        is_header = path.suffix == ".h"
        if is_header and "#pragma once" not in text:
            self.report("pragma-once", path, 1, "header lacks #pragma once")

        check_protocol = rel in PROTOCOL_HEADERS
        check_rng = rel not in RNG_ALLOWED
        rel_posix = rel.as_posix()
        check_raw_io = (rel_posix.startswith("src/")
                        and not rel_posix.startswith(RAW_IO_ALLOWED_PREFIXES))
        check_oracle = (rel_posix.startswith("src/")
                        and rel not in ORACLE_ALLOWED)
        check_thread = rel not in THREAD_ALLOWED
        check_mutex = rel not in MUTEX_ALLOWED
        check_defense = (rel_posix.startswith("src/")
                         and not rel_posix.startswith(DEFENSE_FUNNEL_PREFIX))
        check_span = (rel_posix.startswith("src/")
                      and not rel_posix.startswith(SPAN_FUNNEL_PREFIX))
        check_spatial = (rel_posix.startswith("src/")
                         and rel not in SPATIAL_ALLOWED)

        for lineno, raw in enumerate(lines, start=1):
            allowed = {m for m in ALLOW_RE.findall(raw)}
            code = strip_comments_and_strings(raw)

            if check_rng and "rng-source" not in allowed:
                for pat in RNG_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "rng-source", path, lineno,
                            f"forbidden entropy/wall-clock source "
                            f"'{m.group(0).strip()}' — derive randomness "
                            f"from util::Rng / derive_seed instead")
            if check_raw_io and "raw-io" not in allowed:
                for pat in RAW_IO_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "raw-io", path, lineno,
                            f"raw output '{m.group(0).strip()}' in library "
                            f"code — report via obs metrics/trace or return "
                            f"values instead")
            if check_oracle and "oracle-liveness" not in allowed:
                for pat in ORACLE_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "oracle-liveness", path, lineno,
                            f"ground-truth oracle read "
                            f"'{m.group(0).strip()}' outside the physical "
                            f"delivery layer — use can_execute/suspects/"
                            f"beacons/kGaveUp instead")
            if check_thread and "thread-funnel" not in allowed:
                for pat in THREAD_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "thread-funnel", path, lineno,
                            f"raw concurrency primitive "
                            f"'{m.group(0).strip()}' outside the "
                            f"util::ThreadPool funnel — use "
                            f"util::parallel_for so the deterministic "
                            f"chunking keeps results schedule-independent")
            if check_mutex and "mutex-funnel" not in allowed:
                for pat in MUTEX_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "mutex-funnel", path, lineno,
                            f"raw locking primitive "
                            f"'{m.group(0).strip()}' outside "
                            f"src/util/thread_annotations.h — use the "
                            f"annotated util::Mutex/LockGuard/CondVar so "
                            f"-Wthread-safety sees the acquisition")
            if check_defense and "defense-funnel" not in allowed:
                for pat in DEFENSE_FUNNEL_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "defense-funnel", path, lineno,
                            f"neighbor/quarantine state mutator "
                            f"'{m.group(0).strip()}' outside src/wsn/ — "
                            f"consume suspects()/quarantine_view()/"
                            f"guard_ledger() read-only views or the "
                            f"quarantine listener instead")
            if check_span and "span-funnel" not in allowed:
                for pat in SPAN_FUNNEL_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "span-funnel", path, lineno,
                            f"direct span emission "
                            f"'{m.group(0).strip()}' outside src/obs/ — "
                            f"use the SID_SPAN macro so the metrics-off "
                            f"build compiles the site away")
            if check_spatial and "spatial-funnel" not in allowed:
                for pat in SPATIAL_PATTERNS:
                    m = pat.search(code)
                    if m:
                        self.report(
                            "spatial-funnel", path, lineno,
                            f"all-pairs triangular scan "
                            f"'{m.group(0).strip()}' outside "
                            f"src/wsn/spatial_index — query the grid "
                            f"index instead (its property test pins "
                            f"byte-identity to the brute-force scan)")
            if (is_header and "header-using" not in allowed
                    and USING_NAMESPACE_RE.search(code)):
                self.report("header-using", path, lineno,
                            "`using namespace` at header scope")
            if check_protocol and "protocol-literal" not in allowed:
                for m in FLOAT_LITERAL_RE.finditer(code):
                    if not is_exact_decimal(m.group(1)):
                        self.report(
                            "protocol-literal", path, lineno,
                            f"inexact float literal {m.group(0)} in protocol "
                            f"struct — would break bit-identical replay")

    def run(self) -> int:
        files = []
        for d in SOURCE_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in CXX_SUFFIXES and p.is_file())
        if not files:
            print("lint.py: no source files found", file=sys.stderr)
            return 2
        for f in files:
            self.lint_file(f)
        if self.violations:
            for v in self.violations:
                print(v, file=sys.stderr)
            print(f"lint.py: {len(self.violations)} violation(s) in "
                  f"{len(files)} files", file=sys.stderr)
            return 1
        print(f"lint.py: OK ({len(files)} files clean)")
        return 0


def self_test() -> int:
    """Plants one violation per rule and asserts the linter catches it."""
    cases = {
        "rng-source": "int f() { std::random_device rd; return rd(); }\n",
        "rng-source-time": "long f() { return time(nullptr); }\n",
        "rng-source-mt19937": "std::mt19937 gen(1234);\n",
        "pragma-once": "// header without the pragma\nint x;\n",
        "header-using": "#pragma once\nusing namespace std;\n",
        "raw-io": "#include <iostream>\nvoid f() { std::cout << 1; }\n",
        "raw-io-printf": "void g() { printf(\"x\"); }\n",
        "oracle-liveness":
            "bool f() { return net.node_operational(3, t); }\n",
        "oracle-prr": "double q() { return radio.prr(35.0); }\n",
        "thread-funnel":
            "#include <thread>\nvoid f() { std::thread t([] {}); }\n",
        "thread-funnel-async":
            "#include <future>\nauto g() { return std::async([] {}); }\n",
        "mutex-funnel":
            "#include <mutex>\nstd::mutex mu;\n",
        "mutex-funnel-guard":
            "void f() { std::lock_guard<std::mutex> l(mu); }\n",
        "mutex-funnel-cv":
            "#include <condition_variable>\nstd::condition_variable cv;\n",
        "defense-funnel":
            "void f() { table.on_beacon(3, t); }\n",
        "defense-funnel-ledger":
            "void g() { ledger.assess(msg, t); }\n",
        "defense-funnel-acoustic":
            "void h() { ledger.assess_acoustic(contact, msg, t); }\n",
        "span-funnel":
            "void f() { tracer->emit_span(cat, \"n\", t, d, id, {}); }\n",
        "spatial-funnel":
            "void f() {\n"
            "  for (std::size_t i = 0; i < n; ++i)\n"
            "    for (std::size_t j = i + 1; j < n; ++j) touch(i, j);\n"
            "}\n",
    }
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        src = root / "src"
        src.mkdir()
        (src / "a.cpp").write_text(cases["rng-source"])
        (src / "b.cpp").write_text(cases["rng-source-time"])
        (src / "c.cpp").write_text(cases["rng-source-mt19937"])
        (src / "d.h").write_text(cases["pragma-once"])
        (src / "e.h").write_text(cases["header-using"])
        (src / "f.cpp").write_text(cases["raw-io"])
        (src / "g.cpp").write_text(cases["raw-io-printf"])
        # The observability layer itself may print (it IS the reporter).
        obs = src / "obs"
        obs.mkdir()
        (obs / "ok.cpp").write_text(cases["raw-io"])
        (src / "h.cpp").write_text(cases["oracle-liveness"])
        (src / "i.cpp").write_text(cases["oracle-prr"])
        (src / "j.cpp").write_text(cases["thread-funnel"])
        (src / "k.cpp").write_text(cases["thread-funnel-async"])
        # The thread pool itself IS the funnel: exempt.
        util_dir = src / "util"
        util_dir.mkdir()
        (util_dir / "parallel.cpp").write_text(cases["thread-funnel"])
        # std::this_thread must not trip the std::thread pattern.
        (src / "l.cpp").write_text(
            "#include <thread>\n"
            "void nap() { std::this_thread::yield(); }\n")
        # Mutex-funnel plants: raw primitives outside the annotated
        # wrapper header.
        (src / "o.cpp").write_text(cases["mutex-funnel"])
        (src / "p.cpp").write_text(cases["mutex-funnel-guard"])
        (src / "q.cpp").write_text(cases["mutex-funnel-cv"])
        # The annotated wrapper header itself IS the funnel: exempt.
        (util_dir / "thread_annotations.h").write_text(
            "#pragma once\n#include <mutex>\nstd::mutex raw;\n")
        # Defense-funnel plants: a core-layer file poking neighbor tables
        # and a guard ledger directly.
        core_dir = src / "core"
        core_dir.mkdir()
        (core_dir / "m.cpp").write_text(cases["defense-funnel"])
        (core_dir / "n.cpp").write_text(cases["defense-funnel-ledger"])
        (core_dir / "n2.cpp").write_text(cases["defense-funnel-acoustic"])
        # Span-funnel plant: a core-layer file calling emit_span directly;
        # the obs layer itself (the macro's home) is exempt.
        (core_dir / "r.cpp").write_text(cases["span-funnel"])
        (obs / "span_ok.cpp").write_text(cases["span-funnel"])
        # Spatial-funnel plant: a core-layer all-pairs scan; the index's
        # own implementation is exempt.
        (core_dir / "s.cpp").write_text(cases["spatial-funnel"])
        # A protocol struct with an inexact default.
        wsn = src / "wsn"
        wsn.mkdir()
        (wsn / "messages.h").write_text(
            "#pragma once\nstruct R { double gain = 3.3; };\n")
        # The delivery layer itself IS the oracle: exempt.
        (wsn / "network.cpp").write_text(
            "bool ok(unsigned id, double t) {"
            " return node_operational(id, t); }\n")
        # ...and the defense funnel: the wsn layer may mutate freely.
        (wsn / "defense_user.cpp").write_text(cases["defense-funnel"])
        # ...and the spatial index itself IS the funnel: exempt.
        (wsn / "spatial_index.cpp").write_text(cases["spatial-funnel"])

        linter = Linter(root)
        rc = linter.run()
        if rc != 1:
            failures.append(f"expected exit 1, got {rc}")
        for rule, needle in [
                ("rng-source", "random_device"),
                ("rng-source", "time"),
                ("rng-source", "mt19937"),
                ("pragma-once", "d.h"),
                ("header-using", "e.h"),
                ("raw-io", "f.cpp"),
                ("raw-io", "g.cpp"),
                ("oracle-liveness", "h.cpp"),
                ("oracle-liveness", "i.cpp"),
                ("thread-funnel", "j.cpp"),
                ("thread-funnel", "k.cpp"),
                ("mutex-funnel", "o.cpp"),
                ("mutex-funnel", "p.cpp"),
                ("mutex-funnel", "q.cpp"),
                ("defense-funnel", "m.cpp"),
                ("defense-funnel", "n.cpp"),
                ("defense-funnel", "n2.cpp"),
                ("span-funnel", "r.cpp"),
                ("spatial-funnel", "s.cpp"),
                ("protocol-literal", "3.3"),
        ]:
            if not any(f"[{rule}]" in v and needle in v
                       for v in linter.violations):
                failures.append(f"rule {rule} missed its {needle} plant")
        if any("obs/ok.cpp" in v for v in linter.violations):
            failures.append("raw-io fired inside the exempt src/obs/ tree")
        if any("wsn/network.cpp" in v and "[oracle-liveness]" in v
               for v in linter.violations):
            failures.append(
                "oracle-liveness fired inside the exempt delivery layer")
        if any("util/parallel.cpp" in v and "[thread-funnel]" in v
               for v in linter.violations):
            failures.append(
                "thread-funnel fired inside the exempt pool funnel")
        if any("l.cpp" in v and "[thread-funnel]" in v
               for v in linter.violations):
            failures.append("thread-funnel fired on std::this_thread")
        if any("wsn/defense_user.cpp" in v and "[defense-funnel]" in v
               for v in linter.violations):
            failures.append(
                "defense-funnel fired inside the exempt src/wsn/ tree")
        if any("obs/span_ok.cpp" in v and "[span-funnel]" in v
               for v in linter.violations):
            failures.append(
                "span-funnel fired inside the exempt src/obs/ tree")
        if any("wsn/spatial_index.cpp" in v and "[spatial-funnel]" in v
               for v in linter.violations):
            failures.append(
                "spatial-funnel fired inside the exempt index module")
        # (match on the location prefix: the rule's advice text itself
        # names the exempt header)
        if any(v.startswith("src/util/thread_annotations.h:")
               and "[mutex-funnel]" in v for v in linter.violations):
            failures.append(
                "mutex-funnel fired inside the exempt wrapper header")

        # And a clean tree must pass, including the lint:allow escape.
        clean = root / "clean"
        (clean / "src").mkdir(parents=True)
        (clean / "src" / "ok.h").write_text(
            "#pragma once\n"
            "inline long stamp() { return time(nullptr); }"
            "  // lint:allow rng-source\n")
        clean_linter = Linter(clean)
        if clean_linter.run() != 0:
            failures.append("clean tree with lint:allow did not pass: "
                            + "\n".join(clean_linter.violations))
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("lint.py --self-test: all rules fire and lint:allow works")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a planted violation")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
