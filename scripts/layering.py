#!/usr/bin/env python3
"""Include-graph layering analyzer for the SID reproduction.

Replaces regex-only layering discipline with a real dependency check
(DESIGN.md §5i):

  manifest-cycle     the declared layer DAG in scripts/layering.toml must
                     itself be acyclic (checked before any file is read).
  unknown-layer      every file under src/ must live in a directory the
                     manifest declares — new layers are added explicitly,
                     never by accident.
  layer-dep          every `#include "..."` edge in the real include graph
                     (parsed from compile_commands.json include dirs when a
                     build tree exists, from the source tree otherwise)
                     must be allowed by the manifest: a layer may include
                     itself and its declared dependencies only. Harness
                     trees (tests/bench/examples) may include any src
                     layer, but nothing — not even another harness —
                     includes a harness tree, so bench stays a leaf.
  module-dep         a file named in the manifest's [modules] table promises
                     a *tighter* dependency set than its layer (e.g.
                     wsn/spatial_index depends on util only, so the index
                     stays reusable below the delivery layer). Its includes
                     may reach its own header pair and the listed layers,
                     nothing else — not even the rest of its own layer.
  include-cycle      the file-level include graph must be acyclic (#pragma
                     once hides cycles from the compiler; they are still a
                     layering fault).
  unresolved-include a quoted include that resolves against no include
                     directory is a typo or a stale path — fail loudly.
  const-cast         `const_cast` outside the const-overload delegation
                     idiom (`const_cast<T*>(this)`) is how code mutates
                     state behind a read-only cross-layer view (suspects(),
                     quarantine_view(), metrics snapshots) without the
                     funnel noticing. Banned in src/.
  extern-global      a non-const `extern` object declaration in a src/
                     header is cross-layer shared mutable state outside
                     every locking funnel. Banned.

The mutation-idiom checks use libclang (AST-grade, sees through macros)
when the python bindings are importable, and a token-level fallback
otherwise — same rules, same escapes, so results only get stricter when
clang is present.

A line can opt out of one rule with a trailing `// layering:allow <rule>`.
`--self-test` plants one violation per rule in a temp tree and verifies
each is caught (wired into ctest as `layering_selftest`).

Exit status: 0 clean, 1 violations found, 2 internal error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import tempfile
import tomllib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "bench", "examples")
HARNESS_DIRS = ("tests", "bench", "examples")
CXX_SUFFIXES = {".h", ".cpp"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
ALLOW_RE = re.compile(r"//\s*layering:allow\s+([a-z-]+)")
CONST_CAST_RE = re.compile(r"\bconst_cast\s*<")
# The one blessed const_cast shape: const-overload delegation to the
# non-const sibling of the same object.
SELF_DELEGATION_RE = re.compile(r"\bconst_cast\s*<[^<>;]*\*\s*>\s*\(\s*this\s*\)")
# `extern` object declaration; `extern "C"` linkage blocks and function
# declarations (trailing `(`), plus anything const-qualified, are fine.
EXTERN_RE = re.compile(r"^\s*extern\s+(?!\")")


def strip_comments_and_strings(line: str) -> str:
    """Blanks // comments and string/char literals (single-line scope, same
    contract as scripts/lint.py)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Manifest:
    def __init__(self, layers: dict[str, list[str]],
                 harnesses: dict[str, list[str]],
                 modules: dict[str, list[str]] | None = None):
        self.layers = layers
        self.harnesses = harnesses
        # "<layer>/<stem>" -> allowed layers, tighter than the layer's own
        # list (the module's header pair is implicitly allowed).
        self.modules = modules or {}

    @classmethod
    def load(cls, path: Path) -> "Manifest":
        with path.open("rb") as f:
            data = tomllib.load(f)
        return cls(dict(data.get("layers", {})),
                   dict(data.get("harnesses", {})),
                   dict(data.get("modules", {})))

    def cycle(self) -> list[str] | None:
        """Returns a layer cycle in the declared graph, or None."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.layers}
        stack: list[str] = []

        def dfs(node: str) -> list[str] | None:
            color[node] = GREY
            stack.append(node)
            for dep in self.layers.get(node, []):
                if dep not in color:
                    continue  # unknown deps reported separately
                if color[dep] == GREY:
                    return stack[stack.index(dep):] + [dep]
                if color[dep] == WHITE:
                    found = dfs(dep)
                    if found:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for name in self.layers:
            if color[name] == WHITE:
                found = dfs(name)
                if found:
                    return found
        return None


class Analyzer:
    def __init__(self, root: Path, manifest: Manifest,
                 compile_commands: Path | None,
                 force_fallback: bool = False):
        self.root = root
        self.manifest = manifest
        self.force_fallback = force_fallback
        self.violations: list[str] = []
        self.include_dirs = self._include_dirs(compile_commands)
        # file (repo-relative Path) -> list[(lineno, target rel Path)]
        self.graph: dict[Path, list[tuple[int, Path]]] = {}

    def report(self, rule: str, rel: Path, lineno: int, detail: str):
        self.violations.append(f"{rel.as_posix()}:{lineno}: [{rule}] {detail}")

    # ---------------------------------------------------------------- setup

    def _include_dirs(self, compile_commands: Path | None) -> list[Path]:
        """Include search path: -I entries from the compilation database
        when one exists, plus the conventional src/ root."""
        dirs: list[Path] = []
        if compile_commands and compile_commands.is_file():
            try:
                db = json.loads(compile_commands.read_text())
            except (OSError, json.JSONDecodeError) as err:
                raise RuntimeError(
                    f"unreadable compilation database "
                    f"{compile_commands}: {err}") from err
            for entry in db:
                args = entry.get("arguments") or entry.get("command", "").split()
                for i, arg in enumerate(args):
                    inc: str | None = None
                    if arg.startswith("-I") and len(arg) > 2:
                        inc = arg[2:]
                    elif arg == "-I" and i + 1 < len(args):
                        inc = args[i + 1]
                    if inc:
                        p = Path(inc)
                        if not p.is_absolute():
                            p = Path(entry.get("directory", ".")) / p
                        p = p.resolve()
                        if p not in dirs:
                            dirs.append(p)
        for conventional in (self.root / "src", self.root):
            if conventional not in dirs:
                dirs.append(conventional)
        return dirs

    def files(self) -> list[Path]:
        found = []
        for d in SOURCE_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            found.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in CXX_SUFFIXES and p.is_file())
        return found

    def layer_of(self, rel: Path) -> str | None:
        """Manifest layer name for a repo-relative path; None = unknown
        src/ subtree (a violation reported by the caller)."""
        parts = rel.parts
        if parts[0] in HARNESS_DIRS:
            return parts[0]
        if parts[0] == "src" and len(parts) > 1:
            return parts[1] if parts[1] in self.manifest.layers else None
        return None

    # -------------------------------------------------------------- include graph

    def resolve(self, includer: Path, target: str) -> Path | None:
        """Resolves a quoted include to a repo-relative path, or None when
        it lands outside the repo / does not exist."""
        candidates = [includer.parent / target]
        candidates += [d / target for d in self.include_dirs]
        for cand in candidates:
            try:
                resolved = cand.resolve()
            except OSError:
                continue
            if resolved.is_file():
                try:
                    return resolved.relative_to(self.root)
                except ValueError:
                    return None  # outside the repo: not ours to police
        return None

    def scan_file(self, path: Path):
        rel = path.relative_to(self.root)
        text = path.read_text(encoding="utf-8", errors="replace")
        edges: list[tuple[int, Path]] = []
        in_block_comment = False
        for lineno, raw in enumerate(text.splitlines(), start=1):
            if in_block_comment:
                end = raw.find("*/")
                if end == -1:
                    continue
                raw = raw[end + 2:]
            allowed = set(ALLOW_RE.findall(raw))
            code = strip_comments_and_strings(raw)
            stripped = raw.split("//")[0]
            if stripped.count("/*") > stripped.count("*/"):
                in_block_comment = True
            # Match the include path on the raw line (the stripper blanks
            # string literals); `code` gates out commented-out directives.
            m = (INCLUDE_RE.match(raw)
                 if code.lstrip().startswith("#") else None)
            if m:
                target = self.resolve(path, m.group(1))
                if target is None:
                    if "unresolved-include" not in allowed:
                        self.report(
                            "unresolved-include", rel, lineno,
                            f'#include "{m.group(1)}" resolves against no '
                            f"include directory "
                            f"({', '.join(str(d) for d in self.include_dirs)})")
                elif "layer-dep" not in allowed:
                    edges.append((lineno, target))
            self._check_mutation_tokens(rel, lineno, code, allowed)
        self.graph[rel] = edges

    def check_edges(self):
        for rel, edges in sorted(self.graph.items()):
            src_layer = self.layer_of(rel)
            if src_layer is None:
                self.report(
                    "unknown-layer", rel, 1,
                    "file is in no declared layer — add its directory to "
                    "scripts/layering.toml")
                continue
            allowed = self._allowed_deps(src_layer)
            module_spec = (
                self.manifest.modules.get(f"{src_layer}/{rel.stem}")
                if rel.parts[0] == "src" else None)
            for lineno, target in edges:
                dst_layer = self.layer_of(target)
                if dst_layer is None:
                    continue  # reported once for the target file itself
                if module_spec is not None:
                    same_module = (dst_layer == src_layer
                                   and target.stem == rel.stem)
                    if not same_module and dst_layer not in module_spec:
                        self.report(
                            "module-dep", rel, lineno,
                            f"module '{src_layer}/{rel.stem}' promises a "
                            f"tighter dependency set than its layer — "
                            f"{target.as_posix()} is outside it (allowed: "
                            f"own header pair, "
                            f"{', '.join(sorted(module_spec)) or 'none'})")
                        continue
                if dst_layer == src_layer:
                    continue
                if dst_layer in HARNESS_DIRS:
                    self.report(
                        "layer-dep", rel, lineno,
                        f"includes harness file {target.as_posix()} — "
                        f"tests/bench/examples are leaves, nothing "
                        f"includes them")
                    continue
                if dst_layer not in allowed:
                    self.report(
                        "layer-dep", rel, lineno,
                        f"layer '{src_layer}' must not include layer "
                        f"'{dst_layer}' ({target.as_posix()}) — allowed: "
                        f"{', '.join(sorted(allowed)) or 'none'}")

    def _allowed_deps(self, layer: str) -> set[str]:
        if layer in HARNESS_DIRS:
            spec = self.manifest.harnesses.get(layer, ["*"])
            if "*" in spec:
                return set(self.manifest.layers)
            return set(spec)
        return set(self.manifest.layers.get(layer, []))

    def check_cycles(self):
        """DFS over the file include graph; reports each cycle once."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[Path, int] = {f: WHITE for f in self.graph}
        stack: list[Path] = []

        def dfs(node: Path):
            color[node] = GREY
            stack.append(node)
            for lineno, target in self.graph.get(node, []):
                if target not in color:
                    continue
                if color[target] == GREY:
                    cycle = stack[stack.index(target):] + [target]
                    self.report(
                        "include-cycle", node, lineno,
                        " -> ".join(p.as_posix() for p in cycle))
                elif color[target] == WHITE:
                    dfs(target)
            stack.pop()
            color[node] = BLACK

        for f in sorted(self.graph):
            if color[f] == WHITE:
                dfs(f)

    # ---------------------------------------------------- mutation idioms

    def _check_mutation_tokens(self, rel: Path, lineno: int, code: str,
                               allowed: set[str]):
        """Token-level cross-layer mutation checks (src/ only). The
        libclang pass re-checks the same rules AST-grade when available."""
        if rel.parts[0] != "src":
            return
        if "const-cast" not in allowed:
            m = CONST_CAST_RE.search(code)
            if m and not SELF_DELEGATION_RE.search(code):
                self.report(
                    "const-cast", rel, lineno,
                    "const_cast outside the const-overload delegation "
                    "idiom — mutating through a read-only view bypasses "
                    "the cross-layer funnels")
        if (rel.suffix == ".h" and "extern-global" not in allowed
                and EXTERN_RE.match(code)
                and "const" not in code.split("=")[0].split("(")[0]
                and "(" not in code.split(";")[0]):
            self.report(
                "extern-global", rel, lineno,
                f"non-const extern object '{code.strip()[:60]}' in a "
                f"header is cross-layer shared mutable state outside "
                f"every locking funnel")

    def run_libclang(self) -> bool:
        """AST-grade const_cast check via libclang; True when it ran. The
        token pass above already reported — this pass only *adds* findings
        the tokens missed (casts assembled by macros)."""
        if self.force_fallback:
            return False
        try:
            from clang import cindex  # type: ignore
            index = cindex.Index.create()
        except Exception:
            return False
        for path in self.files():
            rel = path.relative_to(self.root)
            if rel.parts[0] != "src":
                continue
            try:
                tu = index.parse(
                    str(path),
                    args=[f"-I{d}" for d in self.include_dirs]
                    + ["-std=c++20"])
            except Exception:
                continue
            lines = path.read_text(errors="replace").splitlines()
            for cursor in tu.cursor.walk_preorder():
                if cursor.kind != cindex.CursorKind.CXX_CONST_CAST_EXPR:
                    continue
                if cursor.location.file is None:
                    continue
                if Path(cursor.location.file.name).resolve() != path:
                    continue
                lineno = cursor.location.line
                raw = lines[lineno - 1] if lineno <= len(lines) else ""
                if "const-cast" in set(ALLOW_RE.findall(raw)):
                    continue
                if SELF_DELEGATION_RE.search(raw):
                    continue
                finding = (f"{rel.as_posix()}:{lineno}: [const-cast] "
                           f"const_cast (AST) outside the const-overload "
                           f"delegation idiom")
                already = any(v.startswith(f"{rel.as_posix()}:{lineno}:")
                              and "[const-cast]" in v
                              for v in self.violations)
                if not already:
                    self.violations.append(finding)
        return True

    # --------------------------------------------------------------- driver

    def run(self) -> int:
        cycle = self.manifest.cycle()
        if cycle:
            self.violations.append(
                f"scripts/layering.toml:1: [manifest-cycle] declared layer "
                f"graph is cyclic: {' -> '.join(cycle)}")
            # The DAG is the ground truth everything else checks against;
            # stop here.
            return self.finish(0)
        files = self.files()
        if not files:
            print("layering.py: no source files found", file=sys.stderr)
            return 2
        for f in files:
            self.scan_file(f)
        self.check_edges()
        self.check_cycles()
        ast = self.run_libclang()
        return self.finish(len(files), ast)

    def finish(self, nfiles: int, ast: bool = False) -> int:
        if self.violations:
            for v in sorted(set(self.violations)):
                print(v, file=sys.stderr)
            print(f"layering.py: {len(set(self.violations))} violation(s) "
                  f"in {nfiles} files", file=sys.stderr)
            return 1
        mode = "libclang AST + tokens" if ast else "token fallback"
        print(f"layering.py: OK ({nfiles} files, include graph + layer DAG "
              f"clean, mutation checks via {mode})")
        return 0


# ------------------------------------------------------------------ self-test

def _write(path: Path, text: str):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def self_test() -> int:
    """Plants one violation per rule and asserts the analyzer catches it,
    then asserts a clean tree (with layering:allow escapes) passes."""
    manifest = Manifest(
        {"util": [], "wsn": ["util"], "core": ["util", "wsn"]},
        {"tests": ["*"], "bench": ["*"], "examples": ["*"]},
        {"wsn/tight": ["util"]})
    failures: list[str] = []

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        # Clean base layer.
        _write(root / "src/util/rng.h", "#pragma once\nint seed();\n")
        # layer-dep plant: wsn reaches *up* into core.
        _write(root / "src/core/system.h",
               '#pragma once\n#include "wsn/up.h"\n')
        _write(root / "src/wsn/up.h",
               '#pragma once\n#include "core/system.h"\n')  # also a cycle
        # layer-dep plant: src includes a bench header.
        _write(root / "bench/fixture.h", "#pragma once\nint n();\n")
        _write(root / "src/util/bad_bench.cpp",
               '#include "bench/fixture.h"\n')
        # unknown-layer plant: a directory the manifest never declared.
        _write(root / "src/rogue/x.cpp", "int x;\n")
        # unresolved-include plant.
        _write(root / "src/util/typo.cpp", '#include "util/nope.h"\n')
        # const-cast plant + the exempt self-delegation idiom.
        _write(root / "src/wsn/cast.cpp",
               "void f(const int* p) { *const_cast<int*>(p) = 1; }\n")
        _write(root / "src/wsn/delegate.cpp",
               "struct T { int* find(); const int* find() const {\n"
               "  return const_cast<T*>(this)->find(); } };\n")
        # extern-global plant (and an exempt const + function decl).
        _write(root / "src/util/globals.h",
               "#pragma once\n"
               "extern int mutable_global;\n"
               "extern const int kTableSize;\n"
               "extern int pure_function(int);\n")
        # module-dep plant: a [modules]-listed file reaching into the rest
        # of its own layer; its own header and listed layers stay exempt.
        _write(root / "src/wsn/peer.h", "#pragma once\nint peer();\n")
        _write(root / "src/wsn/tight.h", "#pragma once\nint tight();\n")
        _write(root / "src/wsn/tight.cpp",
               '#include "wsn/tight.h"\n'
               '#include "util/rng.h"\n'
               '#include "wsn/peer.h"\n')
        # Harness may include src but not bench.
        _write(root / "tests/ok_test.cpp", '#include "util/rng.h"\n')
        _write(root / "tests/bad_test.cpp", '#include "bench/fixture.h"\n')

        analyzer = Analyzer(root, manifest, None, force_fallback=True)
        rc = analyzer.run()
        if rc != 1:
            failures.append(f"expected exit 1, got {rc}")
        for rule, needle in [
                ("layer-dep", "wsn/up.h"),           # upward dep
                ("layer-dep", "util/bad_bench.cpp"),  # src -> bench
                ("layer-dep", "tests/bad_test.cpp"),  # harness -> bench
                ("include-cycle", "core/system.h"),
                ("unknown-layer", "rogue"),
                ("unresolved-include", "nope.h"),
                ("const-cast", "wsn/cast.cpp"),
                ("extern-global", "mutable_global"),
                ("module-dep", "wsn/peer.h"),
        ]:
            if not any(f"[{rule}]" in v and needle in v
                       for v in analyzer.violations):
                failures.append(f"rule {rule} missed its {needle} plant")
        for exempt, rule in [
                ("wsn/delegate.cpp", "const-cast"),
                ("kTableSize", "extern-global"),
                ("pure_function", "extern-global"),
                ("tests/ok_test.cpp", "layer-dep"),
                ("wsn/tight.h", "module-dep"),
                ("util/rng.h", "module-dep"),
        ]:
            if any(f"[{rule}]" in v and exempt in v
                   for v in analyzer.violations):
                failures.append(f"rule {rule} fired on exempt {exempt}")

        # A cyclic manifest must fail before any file is read.
        bad = Manifest({"a": ["b"], "b": ["a"]}, {})
        cyclic = Analyzer(root, bad, None, force_fallback=True)
        if cyclic.run() != 1 or not any(
                "[manifest-cycle]" in v for v in cyclic.violations):
            failures.append("manifest-cycle not detected")

    # Clean tree with layering:allow escapes passes.
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        _write(root / "src/util/rng.h", "#pragma once\nint seed();\n")
        _write(root / "src/util/esc.cpp",
               "void f(const int* p) {\n"
               "  *const_cast<int*>(p) = 1;  // layering:allow const-cast\n"
               "}\n")
        clean = Analyzer(root, Manifest({"util": []}, {}), None,
                         force_fallback=True)
        if clean.run() != 0:
            failures.append("clean tree with layering:allow did not pass: "
                            + "\n".join(clean.violations))

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("layering.py --self-test: all rules fire and layering:allow works")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repository root to analyze")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="layer DAG manifest (default: "
                             "<root>/scripts/layering.toml)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compilation database for include dirs "
                             "(default: <root>/build/compile_commands.json "
                             "when present)")
    parser.add_argument("--force-fallback", action="store_true",
                        help="skip libclang even when importable "
                             "(token-level checks only)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a planted violation")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root.resolve()
    manifest_path = args.manifest or root / "scripts" / "layering.toml"
    if not manifest_path.is_file():
        print(f"layering.py: manifest {manifest_path} not found",
              file=sys.stderr)
        return 2
    db = args.compile_commands
    if db is None:
        conventional = root / "build" / "compile_commands.json"
        db = conventional if conventional.is_file() else None
    try:
        analyzer = Analyzer(root, Manifest.load(manifest_path), db,
                            force_fallback=args.force_fallback)
        return analyzer.run()
    except RuntimeError as err:
        print(f"layering.py: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
