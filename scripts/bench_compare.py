#!/usr/bin/env python3
"""Compare two sid-metrics-v1 bench dumps (BENCH_*.json) for perf trends.

Diffs the profile histograms of a baseline dump against a current one and
fails when a stage's central timing (mean and p50) regressed beyond the
tolerance factor. Wall-clock timings are machine- and load-dependent, so
the default tolerance is deliberately loose (5x): the gate catches
order-of-magnitude regressions — an accidentally quadratic loop, a lock
on the hot path — not single-digit-percent noise. Invocation *counts*
come from the deterministic workload, so they get a much tighter relative
tolerance of their own.

Counters and gauges are reported informationally (they change whenever
the protocol legitimately changes); pass --check-counters to gate on them
too, e.g. when comparing two runs of the same binary.

Usage:
    bench_compare.py baseline.json current.json
        [--tolerance 5.0] [--count-tolerance 0.25] [--check-counters]

Exit status: 0 within tolerance, 1 regression or schema mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "sid-metrics-v1"


def load(path: Path) -> dict:
    with path.open(encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: not a {SCHEMA} dump")
    return doc


def rel_delta(base: float, cur: float) -> float:
    """Relative change from base to cur; 0 when both are 0."""
    if base == 0.0:
        return 0.0 if cur == 0.0 else float("inf")
    return (cur - base) / base


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def compare_histograms(base: dict, cur: dict, tolerance: float,
                       count_tolerance: float) -> list[str]:
    failures = []
    base_hists = dict(base.get("profile", {}))
    cur_hists = dict(cur.get("profile", {}))
    for name in sorted(base_hists.keys() | cur_hists.keys()):
        if name not in cur_hists:
            failures.append(f"{name}: present in baseline, missing now")
            continue
        if name not in base_hists:
            print(f"  NEW  {name} (no baseline; not compared)")
            continue
        b, c = base_hists[name], cur_hists[name]
        count_delta = rel_delta(b["count"], c["count"])
        status = "ok"
        if abs(count_delta) > count_tolerance:
            failures.append(
                f"{name}: invocation count {b['count']} -> {c['count']} "
                f"({count_delta:+.0%}, tolerance {count_tolerance:.0%})")
            status = "FAIL"
        if b["count"] > 0 and c["count"] > 0:
            for key in ("mean", "p50"):
                ratio = c[key] / b[key] if b[key] > 0 else 1.0
                if ratio > tolerance:
                    failures.append(
                        f"{name}: {key} {fmt_ns(b[key])} -> {fmt_ns(c[key])} "
                        f"({ratio:.1f}x, tolerance {tolerance:.1f}x)")
                    status = "FAIL"
        mean_b = b.get("mean", 0.0)
        mean_c = c.get("mean", 0.0)
        print(f"  {status:<4} {name}: count {b['count']} -> {c['count']}, "
              f"mean {fmt_ns(mean_b)} -> {fmt_ns(mean_c)}")
    return failures


def compare_scalars(base: dict, cur: dict, gate: bool) -> list[str]:
    failures = []
    for section in ("counters", "gauges"):
        b = base.get(section, {})
        c = cur.get(section, {})
        for name in sorted(b.keys() | c.keys()):
            vb, vc = b.get(name), c.get(name)
            if vb == vc:
                continue
            line = f"{section[:-1]} {name}: {vb} -> {vc}"
            if gate:
                failures.append(line)
            else:
                print(f"  note {line}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="max allowed slowdown factor for mean/p50 of a "
                             "profile stage (default 5.0: machine-noise "
                             "proof, catches blowups)")
    parser.add_argument("--count-tolerance", type=float, default=0.25,
                        help="max relative change in a stage's invocation "
                             "count (workload drift; default 0.25)")
    parser.add_argument("--check-counters", action="store_true",
                        help="also fail on any counter/gauge difference "
                             "(only sensible for same-binary comparisons)")
    args = parser.parse_args()

    if args.tolerance < 1.0:
        raise SystemExit("--tolerance must be >= 1.0")
    base = load(args.baseline)
    cur = load(args.current)
    print(f"comparing {args.baseline} (baseline) vs {args.current}:")
    failures = compare_histograms(base, cur, args.tolerance,
                                  args.count_tolerance)
    failures += compare_scalars(base, cur, gate=args.check_counters)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
