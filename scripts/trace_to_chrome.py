#!/usr/bin/env python3
"""Convert a SID JSONL event trace into Chrome trace-event format.

Input lines (written by obs::Tracer, sid_cli --trace-out):

    {"t": <sim seconds>, "cat": "net", "name": "msg_tx", "args": {...}}

Output is a single JSON object loadable in chrome://tracing or Perfetto
(https://ui.perfetto.dev). Each category becomes its own track (tid), so
network traffic, cluster protocol and sink decisions line up on one
simulation timeline. All events are instants; simulation seconds map to
trace microseconds 1:1, so "1 ms" in the viewer is 1 ms of sim time.

Usage:
    trace_to_chrome.py trace.jsonl -o trace_chrome.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Stable track order: protocol layers top to bottom.
CATEGORY_TRACKS = ("node", "cluster", "sink", "net", "energy", "fault")


def convert(lines, strict: bool) -> dict:
    events = []
    tids = {cat: i for i, cat in enumerate(CATEGORY_TRACKS)}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            t_us = float(record["t"]) * 1e6
            cat = str(record["cat"])
            name = str(record["name"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
            if strict:
                raise SystemExit(f"line {lineno}: malformed event: {err}")
            continue
        tid = tids.setdefault(cat, len(tids))
        events.append({
            "name": name,
            "cat": cat,
            "ph": "i",       # instant event
            "s": "t",        # thread-scoped flag
            "ts": t_us,
            "pid": 0,
            "tid": tid,
            "args": record.get("args", {}),
        })
    # Metadata: label each track with its category name.
    meta = [{
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": cat},
    } for cat, tid in sorted(tids.items(), key=lambda kv: kv[1])]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, help="JSONL trace file")
    parser.add_argument("-o", "--out", type=Path,
                        help="output file (default: <trace>_chrome.json)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on malformed lines instead of skipping")
    args = parser.parse_args()

    out = args.out or args.trace.with_name(args.trace.stem + "_chrome.json")
    with args.trace.open(encoding="utf-8") as fh:
        doc = convert(fh, strict=args.strict)
    with out.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    n = sum(1 for e in doc["traceEvents"] if e["ph"] == "i")
    print(f"wrote {out} ({n} events, "
          f"{len(doc['traceEvents']) - n} track labels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
