#!/usr/bin/env python3
"""Convert a SID JSONL event trace into Chrome trace-event format.

Input lines (written by obs::Tracer, sid_cli --trace-out):

    {"t": <sim seconds>, "cat": "net", "name": "msg_tx", "args": {...}}

and span records (SID_SPAN sites, obs/span.h):

    {"t": ..., "cat": "net", "name": "span_hop",
     "span": {"id": "16-hex", "dur": <seconds>}, "args": {...}}

Output is a single JSON object loadable in chrome://tracing or Perfetto
(https://ui.perfetto.dev). Each category becomes its own track (tid), so
network traffic, cluster protocol and sink decisions line up on one
simulation timeline. Plain events are instants; span records with a
positive duration become complete ("X") slices, and every span record
additionally joins a flow (s/t/f arrows keyed by the span id), so a sink
decision's causal chain — origin, hops, retry waits, sink accept — reads
as one connected arc across the tracks. Simulation seconds map to trace
microseconds 1:1, so "1 ms" in the viewer is 1 ms of sim time.

Usage:
    trace_to_chrome.py trace.jsonl -o trace_chrome.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Stable track order: protocol layers top to bottom.
CATEGORY_TRACKS = ("node", "cluster", "sink", "net", "energy", "fault",
                   "defense")


def convert(lines, strict: bool) -> dict:
    events = []
    tids = {cat: i for i, cat in enumerate(CATEGORY_TRACKS)}
    # Per span id: index of the last flow event emitted, so chains render
    # start -> step -> ... -> step and the final step is flipped to "f".
    flow_last: dict[str, int] = {}
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            t_us = float(record["t"]) * 1e6
            cat = str(record["cat"])
            name = str(record["name"])
            span = record.get("span")
            span_id = None if span is None else str(span["id"])
            dur_us = 0.0 if span is None else float(span["dur"]) * 1e6
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
            if strict:
                raise SystemExit(f"line {lineno}: malformed event: {err}")
            continue
        tid = tids.setdefault(cat, len(tids))
        if span_id is not None and dur_us > 0.0:
            events.append({
                "name": name,
                "cat": cat,
                "ph": "X",   # complete event: a slice with a duration
                "ts": t_us,
                "dur": dur_us,
                "pid": 0,
                "tid": tid,
                "args": record.get("args", {}),
            })
        else:
            events.append({
                "name": name,
                "cat": cat,
                "ph": "i",       # instant event
                "s": "t",        # thread-scoped flag
                "ts": t_us,
                "pid": 0,
                "tid": tid,
                "args": record.get("args", {}),
            })
        if span_id is not None:
            # Flow arc through every record sharing this span id. Emitted
            # as steps for now; the loop below flips the last one to "f".
            flow_id = int(span_id, 16)
            events.append({
                "name": name,
                "cat": cat,
                "ph": "t" if span_id in flow_last else "s",
                "id": flow_id,
                "ts": t_us,
                "pid": 0,
                "tid": tid,
                "args": {},
            })
            flow_last[span_id] = len(events) - 1
    for index in flow_last.values():
        if events[index]["ph"] == "t":
            events[index]["ph"] = "f"
            events[index]["bp"] = "e"  # bind to the enclosing slice
    # Metadata: label each track with its category name.
    meta = [{
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": cat},
    } for cat, tid in sorted(tids.items(), key=lambda kv: kv[1])]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, help="JSONL trace file")
    parser.add_argument("-o", "--out", type=Path,
                        help="output file (default: <trace>_chrome.json)")
    parser.add_argument("--strict", action="store_true",
                        help="fail on malformed lines instead of skipping")
    args = parser.parse_args()

    out = args.out or args.trace.with_name(args.trace.stem + "_chrome.json")
    with args.trace.open(encoding="utf-8") as fh:
        doc = convert(fh, strict=args.strict)
    with out.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    n = sum(1 for e in doc["traceEvents"] if e["ph"] in ("i", "X"))
    flows = sum(1 for e in doc["traceEvents"] if e["ph"] in ("s", "t", "f"))
    print(f"wrote {out} ({n} events, {flows} flow steps, "
          f"{len(doc['traceEvents']) - n - flows} track labels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
