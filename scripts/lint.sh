#!/usr/bin/env bash
# Static-analysis gate: custom repo-invariant lint + (when available)
# clang-tidy over the whole tree.
#
#   scripts/lint.sh            # lint.py, plus clang-tidy if installed
#   scripts/lint.sh --no-tidy  # lint.py only (what `ctest -L lint` runs
#                              # implicitly on machines without clang-tidy)
#   scripts/lint.sh --tidy     # require clang-tidy (CI lane; fails if the
#                              # tool or compile_commands.json is missing)
#
# clang-tidy needs a compilation database:
#   cmake -B build -S .        # CMAKE_EXPORT_COMPILE_COMMANDS is ON
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=auto
case "${1:-}" in
  --no-tidy) MODE=off ;;
  --tidy)    MODE=require ;;
  "")        ;;
  *) echo "usage: $0 [--tidy|--no-tidy]" >&2; exit 2 ;;
esac

python3 scripts/lint.py

# Include-graph layering gate (scripts/layering.toml). Uses the build
# tree's compilation database for include resolution when one exists;
# falls back to the conventional src/ include root otherwise.
BUILD_DIR="${SID_BUILD_DIR:-build}"
if [ -f "$BUILD_DIR/compile_commands.json" ]; then
  python3 scripts/layering.py \
    --compile-commands "$BUILD_DIR/compile_commands.json"
else
  python3 scripts/layering.py
fi

if [ "$MODE" = off ]; then
  exit 0
fi

RUN_CLANG_TIDY="$(command -v run-clang-tidy || command -v run-clang-tidy-18 || command -v run-clang-tidy-17 || true)"
if [ -z "$RUN_CLANG_TIDY" ] || ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "$MODE" = require ]; then
    echo "lint.sh: clang-tidy/run-clang-tidy not found but --tidy was given" >&2
    exit 1
  fi
  echo "lint.sh: clang-tidy not found, skipping static-analysis pass" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  if [ "$MODE" = require ]; then
    echo "lint.sh: $BUILD_DIR/compile_commands.json missing — configure with cmake first" >&2
    exit 1
  fi
  echo "lint.sh: no compile_commands.json in $BUILD_DIR, skipping clang-tidy" >&2
  exit 0
fi

# Whole-tree clang-tidy; .clang-tidy at the repo root supplies the checks
# and WarningsAsErrors, so any finding fails the gate.
"$RUN_CLANG_TIDY" -p "$BUILD_DIR" -quiet "src/.*|tests/.*|bench/.*|examples/.*"
echo "lint.sh: clang-tidy clean"
