// speed_trap: the Fig. 10 scenario — four nodes, one crossing ship,
// recover its speed from wake-arrival timestamps alone (Eq. 14-16).
//
// The example runs the whole measurement chain (sea + wake + buoy +
// detector) for several ship speeds and compares the Eq. 16 inversion
// against ground truth, with the clean analytic timestamps as a
// reference.
//
//   $ ./speed_trap [speed_knots...]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/scenario.h"
#include "core/speed_estimator.h"
#include "util/units.h"
#include "wsn/network.h"

namespace {

/// Clean inversion: analytic wake-arrival times, no sensing noise.
void analytic_reference(double speed_knots, double heading_deg) {
  using namespace sid;
  const double v = util::knots_to_mps(speed_knots);
  const double phi = util::deg_to_rad(heading_deg);
  wake::ShipTrackConfig cfg;
  cfg.start = {12.5 - 200.0 / std::tan(phi), -200.0};
  cfg.heading_rad = phi;
  cfg.speed_mps = v;
  const wake::ShipTrack track(cfg);
  core::SpeedQuad quad;
  quad.t1 = track.wake_arrival_time({0.0, 0.0});
  quad.t2 = track.wake_arrival_time({0.0, 25.0});
  quad.t3 = track.wake_arrival_time({25.0, 0.0});
  quad.t4 = track.wake_arrival_time({25.0, 25.0});
  const auto est = core::estimate_speed_either_pairing(quad);
  if (est) {
    std::printf("  analytic timestamps: %.2f kn (error %+.1f %%)\n",
                est->speed_knots,
                100.0 * (est->speed_knots - speed_knots) / speed_knots);
  } else {
    std::printf("  analytic timestamps: no estimate\n");
  }
}

/// Full pipeline: synthetic sea, wandering track, detector onsets.
void full_pipeline(double speed_knots, double heading_deg,
                   std::uint64_t seed) {
  using namespace sid;
  wsn::NetworkConfig net_cfg;
  net_cfg.rows = 6;
  net_cfg.cols = 6;
  wsn::Network network(net_cfg);

  core::ScenarioConfig scen;
  scen.seed = seed;
  scen.trace.duration_s = 260.0;
  scen.detector.threshold_multiplier_m = 2.0;
  scen.detector.anomaly_frequency_threshold = 0.5;

  const double phi = util::deg_to_rad(heading_deg);
  wake::ShipTrackConfig ship;
  ship.start = {62.5 + 400.0 / std::tan(phi) * -1.0, -400.0};
  ship.heading_rad = phi;
  ship.speed_mps = util::knots_to_mps(speed_knots);
  ship.wander_amplitude_m = 2.0;  // "not really a straight line"

  const std::vector<wake::ShipTrackConfig> ships{ship};
  const auto run = core::simulate_node_reports(network, ships, scen);

  std::vector<wsn::DetectionReport> matched;
  for (std::size_t i = 0; i < run.node_runs.size(); ++i) {
    for (std::size_t a = 0; a < run.node_runs[i].alarms.size(); ++a) {
      if (core::alarm_matches_truth(run.node_runs[i].alarms[a],
                                    run.truths[i].wake_arrivals, 6.0)) {
        matched.push_back(run.node_runs[i].reports[a]);
      }
    }
  }
  const auto quad = core::select_speed_quad(matched);
  if (!quad) {
    std::printf("  full pipeline:       no complete 2x2 block detected\n");
    return;
  }
  const auto est = core::estimate_speed_either_pairing(*quad);
  if (!est) {
    std::printf("  full pipeline:       inversion rejected the quad\n");
    return;
  }
  std::printf("  full pipeline:       %.2f kn (error %+.1f %%, alpha "
              "%.0f deg)\n",
              est->speed_knots,
              100.0 * (est->speed_knots - speed_knots) / speed_knots,
              util::rad_to_deg(est->alpha_rad));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<double> speeds;
  for (int i = 1; i < argc; ++i) speeds.push_back(std::atof(argv[i]));
  if (speeds.empty()) speeds = {10.0, 16.0};

  std::printf("speed_trap: Eq. 16 inversion, D = 25 m, theta = 20 deg\n");
  for (double speed : speeds) {
    if (speed <= 0.0) {
      std::printf("skipping bad speed argument\n");
      continue;
    }
    std::printf("\nactual speed %.1f kn, heading 87 deg:\n", speed);
    analytic_reference(speed, 87.0);
    full_pipeline(speed, 87.0, static_cast<std::uint64_t>(speed * 100));
  }
  return 0;
}
