// sid_cli: command-line front end for the library — simulate traces,
// detect on recorded traces, and run full scenarios without writing C++.
//
//   sid_cli simulate --out trace.sidb [--ship-knots 10] [--cpa 25]
//                    [--duration 240] [--sea calm|moderate|rough]
//                    [--seed 1] [--csv]
//   sid_cli detect --in trace.sidb [--m 2.0] [--af 0.5]
//   sid_cli scenario [--ship-knots 10] [--heading 88] [--rows 6]
//                    [--cols 6] [--seed 1] [--threads 1] [--shards 0]
//                    [--metrics-out metrics.json]
//                    [--trace-out trace.jsonl] [--trace-categories net,sink]
//                    [--telemetry-out telemetry.jsonl]
//                    [--telemetry-interval 5]
//                    [--flightrec-out flightrec.jsonl]
//
// `simulate` writes a synthetic buoy recording (SIDB binary, or CSV with
// --csv); `detect` runs the paper's node-level detector over any trace
// file (including converted real recordings); `scenario` runs the whole
// distributed pipeline and prints the sink log.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/node_detector.h"
#include "core/sid_system.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace_io.h"
#include "shipwave/wave_train.h"
#include "util/error.h"
#include "util/units.h"

namespace {

using namespace sid;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const {
    return options.contains(name);
  }
  std::string str(const std::string& name, const std::string& fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  double num(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) continue;
    std::string key(arg.substr(2));
    // Flags without a value get "1". Built as a fresh string and
    // move-assigned: assigning a char* into the map's string trips a GCC 12
    // -O3 -Wrestrict false positive (GCC bug 105329).
    std::string value = "1";
    if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
      value = argv[++i];
    }
    args.options[std::move(key)] = std::move(value);
  }
  return args;
}

ocean::SeaState parse_sea(const std::string& name) {
  if (name == "calm") return ocean::SeaState::kCalm;
  if (name == "moderate") return ocean::SeaState::kModerate;
  if (name == "rough") return ocean::SeaState::kRough;
  throw util::InvalidArgument("unknown sea state: " + name);
}

int cmd_simulate(const Args& args) {
  const std::string out = args.str("out", "trace.sidb");
  const double knots = args.num("ship-knots", 10.0);
  const double cpa = args.num("cpa", 25.0);
  const double duration = args.num("duration", 240.0);
  const auto sea = parse_sea(args.str("sea", "calm"));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1.0));

  const auto spectrum = ocean::make_sea_spectrum(sea);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = seed;
  const ocean::WaveField field(*spectrum, field_cfg);

  std::vector<wake::WakeTrain> trains;
  if (knots > 0.0) {
    wake::ShipTrackConfig ship;
    ship.start = {0.0, -400.0};
    ship.heading_rad = util::deg_to_rad(90.0);
    ship.speed_mps = util::knots_to_mps(knots);
    if (auto train =
            wake::make_wake_train(wake::ShipTrack(ship), {cpa, 0.0})) {
      std::printf("wake front arrives at t = %.1f s\n",
                  train->params().arrival_time_s);
      trains.push_back(*train);
    }
  }

  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = duration;
  trace_cfg.buoy.anchor = {cpa, 0.0};
  trace_cfg.buoy.seed = seed + 1;
  trace_cfg.accel.seed = seed + 2;
  const auto trace = sense::generate_trace(field, trains, trace_cfg);

  if (args.flag("csv")) {
    sense::write_trace_csv(trace, out);
  } else {
    sense::write_trace_binary(trace, out);
  }
  std::printf("wrote %s (%zu samples, %.0f s at %.0f Hz)\n", out.c_str(),
              trace.size(), trace.duration_s(), trace.sample_rate_hz);
  return 0;
}

int cmd_detect(const Args& args) {
  const std::string in = args.str("in", "trace.sidb");
  const auto trace = in.size() > 4 && in.substr(in.size() - 4) == ".csv"
                         ? sense::read_trace_csv(in)
                         : sense::read_trace_binary(in);
  std::printf("loaded %s: %zu samples at %.0f Hz\n", in.c_str(), trace.size(),
              trace.sample_rate_hz);

  core::NodeDetectorConfig cfg;
  cfg.sample_rate_hz = trace.sample_rate_hz;
  cfg.threshold_multiplier_m = args.num("m", 2.0);
  cfg.anomaly_frequency_threshold = args.num("af", 0.5);
  core::NodeDetector detector(cfg);
  const auto alarms = detector.process_trace(trace);
  if (alarms.empty()) {
    std::puts("no detections");
    return 1;
  }
  for (const auto& alarm : alarms) {
    const bool truth_known = !trace.wake_intervals.empty();
    const bool matched =
        truth_known &&
        [&] {
          for (const auto& [start, end] : trace.wake_intervals) {
            if (alarm.onset_time_s >= start - 5.0 &&
                alarm.onset_time_s <= end + 30.0) {
              return true;
            }
          }
          return false;
        }();
    std::printf("ALARM onset=%.1fs af=%.0f%% peak=%.0f%s\n",
                alarm.onset_time_s, 100.0 * alarm.anomaly_frequency,
                alarm.peak_energy,
                !truth_known ? "" : (matched ? "  [matches ship]"
                                             : "  [false alarm]"));
  }
  return 0;
}

int cmd_scenario(const Args& args) {
  core::SidSystemConfig cfg;
  cfg.network.rows = static_cast<std::size_t>(args.num("rows", 6.0));
  cfg.network.cols = static_cast<std::size_t>(args.num("cols", 6.0));
  cfg.scenario.seed = static_cast<std::uint64_t>(args.num("seed", 1.0));
  cfg.scenario.trace.duration_s = args.num("duration", 300.0);
  cfg.scenario.detector.threshold_multiplier_m = args.num("m", 2.0);
  cfg.scenario.detector.anomaly_frequency_threshold = args.num("af", 0.5);
  // Worker threads for the synthesis/detection front end. Results are
  // bit-identical at any count (core/scenario.h), so this is purely a
  // wall-clock knob.
  cfg.scenario.threads = static_cast<std::size_t>(args.num("threads", 1.0));
  // Spatial shards for the network's beacon plane. 0 = legacy engine;
  // K >= 1 runs the windowed sharded engine, bit-identical for every K
  // (CI byte-compares --shards 1 vs 4, like --threads above).
  cfg.network.shards = static_cast<std::size_t>(args.num("shards", 0.0));

  const double knots = args.num("ship-knots", 10.0);
  const double heading = args.num("heading", 88.0);
  std::vector<wake::ShipTrackConfig> ships;
  if (knots > 0.0) {
    const double phi = util::deg_to_rad(heading);
    wake::ShipTrackConfig ship;
    const double cross_x =
        static_cast<double>(cfg.network.cols - 1) * 12.5;
    ship.start = {cross_x - 400.0 / std::tan(phi), -400.0};
    ship.heading_rad = phi;
    ship.speed_mps = util::knots_to_mps(knots);
    ships.push_back(ship);
  }

  core::SidSystem system(cfg);
  const std::string trace_out = args.str("trace-out", "");
  if (!trace_out.empty()) {
    system.tracer().open(
        trace_out,
        obs::parse_category_list(args.str("trace-categories", "all")));
  }
  const std::string telemetry_out = args.str("telemetry-out", "");
  if (!telemetry_out.empty()) {
    obs::TelemetryConfig telemetry_cfg;
    telemetry_cfg.interval_s = args.num("telemetry-interval", 5.0);
    system.enable_telemetry(telemetry_cfg);
  }
  const std::string flightrec_out = args.str("flightrec-out", "");
  if (!flightrec_out.empty()) {
    // Arm crash dumping too: on SID_CHECK failure the recorder writes the
    // last events to this file before the abort.
    system.flight_recorder().set_auto_dump_path(flightrec_out);
    system.flight_recorder().install_crash_dump(flightrec_out);
  }
  const auto result = system.run(ships);
  const std::uint64_t trace_events = system.tracer().events_emitted();
  if (!trace_out.empty()) system.tracer().close();

  const std::string metrics_out = args.str("metrics-out", "");
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      throw util::InvalidArgument("cannot open metrics file: " + metrics_out);
    }
    system.registry().write_json(os, /*include_wall=*/true,
                                 &obs::profile_registry());
    os << '\n';
  }

  if (!telemetry_out.empty()) {
    std::ofstream os(telemetry_out);
    if (!os) {
      throw util::InvalidArgument("cannot open telemetry file: " +
                                  telemetry_out);
    }
    if (const auto* sampler = system.telemetry()) sampler->dump_jsonl(os);
  }
  if (!flightrec_out.empty()) {
    system.flight_recorder().dump_to_file(flightrec_out, "end_of_run");
  }

  // One-line observability digest on stderr (stdout stays the sink log).
  const auto& detector_h = obs::stage_histogram(obs::Stage::kDetector);
  const auto& dispatch_h = obs::stage_histogram(obs::Stage::kEventDispatch);
  std::fprintf(
      stderr,
      "[obs] alarms=%zu sink_decisions=%zu drops=%llu trace_events=%llu "
      "detector p50=%.2fms p99=%.2fms dispatch p50=%.1fus p99=%.1fus\n",
      result.alarms_raised, result.sink_reports.size(),
      static_cast<unsigned long long>(result.network_stats.unicasts_dropped),
      static_cast<unsigned long long>(trace_events),
      detector_h.percentile(0.50) / 1e6, detector_h.percentile(0.99) / 1e6,
      dispatch_h.percentile(0.50) / 1e3, dispatch_h.percentile(0.99) / 1e3);
  std::printf("alarms=%zu clusters=%zu cancelled=%zu sink_reports=%zu\n",
              result.alarms_raised, result.clusters_formed,
              result.clusters_cancelled, result.sink_reports.size());
  for (const auto& r : result.sink_reports) {
    std::printf("  t=%7.1f head=%-3u C=%.2f R2=%.2f n=%-3zu %s",
                r.sink_time_s, r.decision.head, r.decision.correlation,
                r.decision.sweep_consistency, r.decision.report_count,
                r.decision.intrusion ? "INTRUSION" : "-");
    if (r.decision.estimated_speed_mps > 0.0) {
      std::printf(" %.1f kn",
                  util::mps_to_knots(r.decision.estimated_speed_mps));
    }
    std::printf("\n");
  }
  std::printf("verdict: %s\n", result.intrusion_reported()
                                   ? "INTRUSION REPORTED"
                                   : "no intrusion");
  return result.intrusion_reported() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "detect") return cmd_detect(args);
    if (args.command == "scenario") return cmd_scenario(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage: sid_cli simulate|detect|scenario [options]\n"
               "  simulate --out FILE [--ship-knots N] [--cpa M] "
               "[--duration S] [--sea calm|moderate|rough] [--seed N] "
               "[--csv]\n"
               "  detect   --in FILE [--m M] [--af F]\n"
               "  scenario [--ship-knots N] [--heading DEG] [--rows R] "
               "[--cols C] [--seed N] [--threads T] [--shards K] "
               "[--metrics-out FILE] "
               "[--trace-out FILE] [--trace-categories LIST] "
               "[--telemetry-out FILE] [--telemetry-interval S] "
               "[--flightrec-out FILE]\n");
  return 2;
}
