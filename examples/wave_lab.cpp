// wave_lab: signal exploration — dump traces and spectra as CSV for
// plotting, the workflow behind Figs. 5-8.
//
//   $ ./wave_lab [output_dir]
//
// Writes:
//   <dir>/trace_ocean.csv        t, x, y, z           (counts)
//   <dir>/trace_ship.csv         t, x, y, z, wake     (counts, 0/1 flag)
//   <dir>/spectrum.csv           f, ocean_power, ship_power
//   <dir>/scalogram_ship.csv     t, f, power          (long format)
//   <dir>/filtered.csv           t, raw, filtered     (z centred)
#include <cstdio>
#include <numbers>
#include <string>

#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/stft.h"
#include "dsp/wavelet.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace sid;
  const std::string dir = argc > 1 ? argv[1] : ".";

  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = 4242;
  const ocean::WaveField sea(*spectrum, field_cfg);

  wake::ShipTrackConfig ship;
  ship.start = {0.0, -250.0};
  ship.heading_rad = std::numbers::pi / 2;
  ship.speed_mps = util::knots_to_mps(12.0);
  const auto train =
      wake::make_wake_train(wake::ShipTrack(ship), {25.0, 0.0});

  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 120.0;
  trace_cfg.buoy.anchor = {25.0, 0.0};
  const auto ocean_trace = sense::generate_ocean_trace(sea, trace_cfg);
  const std::vector<wake::WakeTrain> trains{*train};
  const auto ship_trace = sense::generate_trace(sea, trains, trace_cfg);

  {
    util::CsvWriter csv(dir + "/trace_ocean.csv", {"t", "x", "y", "z"});
    for (std::size_t i = 0; i < ocean_trace.size(); ++i) {
      csv.write_row({ocean_trace.time_at(i), ocean_trace.x[i],
                     ocean_trace.y[i], ocean_trace.z[i]});
    }
    std::printf("wrote %s/trace_ocean.csv (%zu rows)\n", dir.c_str(),
                csv.rows_written());
  }
  {
    util::CsvWriter csv(dir + "/trace_ship.csv",
                        {"t", "x", "y", "z", "wake"});
    for (std::size_t i = 0; i < ship_trace.size(); ++i) {
      csv.write_row({ship_trace.time_at(i), ship_trace.x[i], ship_trace.y[i],
                     ship_trace.z[i],
                     ship_trace.wake_active_at(i) ? 1.0 : 0.0});
    }
    std::printf("wrote %s/trace_ship.csv (%zu rows)\n", dir.c_str(),
                csv.rows_written());
  }

  // Mid-record 2048-point spectra (Fig. 6).
  {
    const auto ocean_z = ocean_trace.z_centered();
    const auto ship_z = ship_trace.z_centered();
    const std::size_t start = ocean_z.size() / 2 - 1024;
    const auto ocean_power = dsp::frame_power_spectrum(
        std::span<const double>(ocean_z).subspan(start, 2048),
        dsp::WindowType::kHann);
    const auto ship_power = dsp::frame_power_spectrum(
        std::span<const double>(ship_z).subspan(start, 2048),
        dsp::WindowType::kHann);
    util::CsvWriter csv(dir + "/spectrum.csv",
                        {"f_hz", "ocean_power", "ship_power"});
    for (std::size_t k = 0; k < ocean_power.size(); ++k) {
      const double f = dsp::bin_frequency(k, 2048, 50.0);
      if (f > 5.0) break;  // the paper's Fig. 6 axis
      csv.write_row({f, ocean_power[k], ship_power[k]});
    }
    std::printf("wrote %s/spectrum.csv (%zu rows)\n", dir.c_str(),
                csv.rows_written());
  }

  // Morlet scalogram of the ship record (Fig. 7), long format.
  {
    dsp::CwtConfig cwt_cfg;
    cwt_cfg.min_frequency_hz = 0.05;
    cwt_cfg.max_frequency_hz = 5.0;
    cwt_cfg.num_scales = 24;
    const auto ship_z = ship_trace.z_centered();
    const auto scalogram = dsp::cwt_morlet(ship_z, cwt_cfg);
    util::CsvWriter csv(dir + "/scalogram_ship.csv", {"t", "f_hz", "power"});
    // Down-sample time to 1 Hz for a plottable file.
    for (std::size_t s = 0; s < scalogram.frequencies_hz.size(); ++s) {
      for (std::size_t i = 0; i < ship_z.size(); i += 50) {
        csv.write_row({ship_trace.time_at(i), scalogram.frequencies_hz[s],
                       scalogram.power[s][i]});
      }
    }
    std::printf("wrote %s/scalogram_ship.csv (%zu rows)\n", dir.c_str(),
                csv.rows_written());
  }

  // Raw vs filtered (Fig. 8).
  {
    const auto raw = ship_trace.z_centered();
    const auto filtered = dsp::lowpass_filter(raw, 1.0, 50.0);
    util::CsvWriter csv(dir + "/filtered.csv", {"t", "raw", "filtered"});
    for (std::size_t i = 0; i < raw.size(); ++i) {
      csv.write_row({ship_trace.time_at(i), raw[i], filtered[i]});
    }
    std::printf("wrote %s/filtered.csv (%zu rows)\n", dir.c_str(),
                csv.rows_written());
  }

  std::printf("done; wake front arrival was at t = %.1f s\n",
              train->params().arrival_time_s);
  return 0;
}
