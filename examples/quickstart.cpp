// Quickstart: the smallest end-to-end use of the SID library.
//
// One buoy-mounted sensor node floats 25 m from the path of a 10-knot
// boat. We synthesize what its accelerometer records, run the paper's
// node-level detector on the stream, and print the alarm.
//
//   $ ./quickstart
#include <cstdio>
#include <numbers>

#include "core/node_detector.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"
#include "util/units.h"

int main() {
  using namespace sid;

  // 1. The sea: calm harbor water, synthesized from a JONSWAP spectrum.
  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  const ocean::WaveField sea(*spectrum, ocean::WaveFieldConfig{});

  // 2. The intruder: a 10-knot boat heading north, passing 25 m west of
  //    our buoy.
  wake::ShipTrackConfig ship;
  ship.start = {0.0, -400.0};
  ship.heading_rad = std::numbers::pi / 2;
  ship.speed_mps = util::knots_to_mps(10.0);
  const wake::ShipTrack track(ship);

  const util::Vec2 buoy_position{25.0, 0.0};
  const auto wake_train = wake::make_wake_train(track, buoy_position);
  if (!wake_train) {
    std::puts("the wake never reaches the buoy — nothing to detect");
    return 1;
  }
  std::printf("ground truth: wake front reaches the buoy at t = %.1f s "
              "(height %.2f m)\n",
              wake_train->params().arrival_time_s,
              wake_train->params().peak_height_m);

  // 3. The sensor: 4 minutes of three-axis ADC counts at 50 Hz, exactly
  //    what the iMote2's LIS3L02DQ would record.
  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 240.0;
  trace_cfg.buoy.anchor = buoy_position;
  const std::vector<wake::WakeTrain> trains{*wake_train};
  const auto trace = sense::generate_trace(sea, trains, trace_cfg);
  std::printf("recorded %zu samples (%.0f s at %.0f Hz)\n", trace.size(),
              trace.duration_s(), trace.sample_rate_hz);

  // 4. The detector: 1 Hz low-pass -> rectify -> adaptive threshold
  //    (M = 2) -> anomaly frequency a_f over a 2 s window (§IV-B).
  core::NodeDetectorConfig det_cfg;
  det_cfg.threshold_multiplier_m = 2.0;
  det_cfg.anomaly_frequency_threshold = 0.5;
  core::NodeDetector detector(det_cfg);

  const auto alarms = detector.process_trace(trace);
  if (alarms.empty()) {
    std::puts("no detection — try a calmer sea or a closer pass");
    return 1;
  }
  for (const auto& alarm : alarms) {
    std::printf(
        "ALARM: onset %.1f s, anomaly frequency %.0f %%, energy %.0f "
        "counts%s\n",
        alarm.onset_time_s, 100.0 * alarm.anomaly_frequency,
        alarm.average_energy,
        alarm.onset_time_s >= wake_train->params().arrival_time_s - 5.0 &&
                alarm.onset_time_s <=
                    wake_train->params().arrival_time_s + 30.0
            ? "  <-- the ship"
            : "  (false alarm)");
  }
  return 0;
}
