// harbor_guard: the full distributed pipeline on a realistic scenario.
//
// A 6x6 grid of sensor buoys (25 m spacing) guards a harbor approach.
// Two vessels cross the field at different times, speeds and headings;
// the node detectors raise alarms, temporary clusters form by invite
// flooding, heads evaluate the spatio-temporal correlation (Eq. 9-13),
// estimate intruder speed (Eq. 16), and forward decisions through static
// cluster heads to the sink. The example prints everything the sink
// learns, plus network and energy accounting.
//
//   $ ./harbor_guard
#include <cstdio>

#include "core/sid_system.h"
#include "util/units.h"

int main() {
  using namespace sid;

  core::SidSystemConfig cfg;
  cfg.network.rows = 6;
  cfg.network.cols = 6;
  cfg.network.spacing_m = 25.0;
  cfg.network.radio.extra_loss_probability = 0.05;  // a busy RF day
  cfg.scenario.sea_state = ocean::SeaState::kCalm;
  cfg.scenario.trace.duration_s = 420.0;
  cfg.scenario.detector.threshold_multiplier_m = 2.0;
  cfg.scenario.detector.anomaly_frequency_threshold = 0.5;
  cfg.cluster.min_reports = 4;

  core::SidSystem system(cfg);

  // Intruder 1: a 10-knot fishing boat crossing south-to-north.
  wake::ShipTrackConfig boat;
  boat.start = {70.0, -400.0};
  boat.heading_rad = util::deg_to_rad(88.0);
  boat.speed_mps = util::knots_to_mps(10.0);
  boat.start_time_s = 0.0;
  boat.wander_amplitude_m = 2.0;

  // Intruder 2: a faster launch, later and on a slanted course.
  wake::ShipTrackConfig launch;
  launch.start = {-40.0, -380.0};
  launch.heading_rad = util::deg_to_rad(75.0);
  launch.speed_mps = util::knots_to_mps(16.0);
  launch.start_time_s = 160.0;

  std::printf("harbor_guard: %zux%zu grid, %.0f m spacing, two intruders\n",
              cfg.network.rows, cfg.network.cols, cfg.network.spacing_m);

  const std::vector<wake::ShipTrackConfig> ships{boat, launch};
  const auto result = system.run(ships);

  std::printf("\n--- sink log ---\n");
  if (result.sink_reports.empty()) {
    std::puts("(nothing reached the sink)");
  }
  for (const auto& report : result.sink_reports) {
    std::printf("t=%7.1f s  head=node %-3u  C=%.3f  reports=%-3zu  %s",
                report.sink_time_s, report.decision.head,
                report.decision.correlation, report.decision.report_count,
                report.decision.intrusion ? "INTRUSION" : "no intrusion");
    if (report.decision.estimated_speed_mps > 0.0) {
      std::printf("  speed ~ %.1f kn",
                  util::mps_to_knots(report.decision.estimated_speed_mps));
    }
    std::printf("\n");
  }

  std::printf("\n--- bookkeeping ---\n");
  std::printf("node alarms raised:        %zu\n", result.alarms_raised);
  std::printf("temporary clusters formed: %zu (cancelled: %zu)\n",
              result.clusters_formed, result.clusters_cancelled);
  std::printf("decisions sent to sink:    %zu\n", result.decisions_sent);
  const auto& net = result.network_stats;
  std::printf("unicasts: %zu attempted, %zu delivered, %zu dropped, "
              "%zu unroutable (%zu hops, %zu bytes)\n",
              net.unicasts_attempted, net.unicasts_delivered,
              net.unicasts_dropped, net.unicasts_unroutable,
              net.hops_traversed, net.bytes_sent);
  std::printf("floods: %zu (%zu deliveries)\n", net.floods,
              net.flood_deliveries);
  std::printf("total energy spent:        %.1f mJ across %zu nodes\n",
              result.total_energy_mj,
              cfg.network.rows * cfg.network.cols);

  std::printf("\n--- vessel tracks (sink) ---\n");
  if (result.tracks.empty()) std::puts("(none)");
  for (const auto& track : result.tracks) {
    std::printf("track %zu: %zu decisions, last at (%.0f, %.0f) m, "
                "speed %.1f kn%s\n",
                track.id, track.observations, track.position.x,
                track.position.y, util::mps_to_knots(track.speed_mps()),
                track.confirmed() ? "" : "  (unconfirmed)");
  }

  std::printf("\nverdict: %s\n",
              result.intrusion_reported()
                  ? "intrusion(s) reported to the operator"
                  : "no intrusion reported");
  return result.intrusion_reported() ? 0 : 1;
}
