// Robustness sweep: detection rate and sink latency as the fault load
// grows (node crash-stop failures, Gilbert–Elliott burst loss), plus the
// self-healing recovery curve: detection recall and median end-to-end
// recovery time vs the fraction of failed nodes, oracle routing vs the
// beacon-driven self-healing substrate.
//
// Emits schema-stable JSON (same keys regardless of values; missing
// medians are null): "node_failure_curve", "burst_loss_curve" and
// "recovery_curve". The graceful-degradation machinery (member fallback
// on head death, end-to-end ARQ with explicit give-up, duplicate
// suppression) is enabled, so the curves measure how the whole pipeline
// degrades rather than how fast it collapses.
//
// Two built-in sanity gates make the binary usable as a smoke test:
//   1. monotone: the fault-free detection rate must be at least the
//      heaviest-fault rate (adding faults must never *help*);
//   2. acceptance: at ~20 % node failures, self-healing recall must stay
//      within max(0.1, 1/trials) of the oracle baseline, and any recorded
//      sid.recovery_time_s median must be finite.
//
//   robustness_sweep [--smoke]
//
// --smoke runs a tiny grid with few trials (wired into ctest under the
// `robustness` label).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "core/sid_system.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "wsn/faults.h"

namespace {

using namespace sid;

struct SweepSettings {
  std::size_t rows = 6;
  std::size_t cols = 6;
  double duration_s = 220.0;
  int trials = 3;
  std::vector<double> failure_fractions{0.0, 0.1, 0.2, 0.3, 0.4};
  std::vector<double> burst_loss_bad{0.0, 0.3, 0.6, 0.9};
};

struct TrialResult {
  bool detected = false;
  std::optional<double> first_sink_s;
  /// Median of sid.recovery_time_s for this run (absent when no delivery
  /// needed a retry).
  std::optional<double> median_recovery_s;
  std::uint64_t route_repairs = 0;
  std::uint64_t false_suspicions = 0;
};

struct SweepPoint {
  double x = 0.0;  ///< failure fraction or burst loss_bad
  int detections = 0;
  int trials = 0;
  std::optional<double> median_latency_s;
  std::optional<double> median_recovery_s;
  std::uint64_t route_repairs = 0;
  std::uint64_t false_suspicions = 0;
  double detection_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(detections) /
                             static_cast<double>(trials);
  }
};

core::SidSystemConfig base_config(const SweepSettings& s,
                                  std::uint64_t seed) {
  core::SidSystemConfig cfg;
  cfg.network.rows = s.rows;
  cfg.network.cols = s.cols;
  cfg.network.seed = seed;
  cfg.scenario.seed = seed * 17;
  cfg.scenario.trace.duration_s = s.duration_s;
  cfg.scenario.detector.threshold_multiplier_m = 2.0;
  cfg.scenario.detector.anomaly_frequency_threshold = 0.5;
  cfg.cluster.collection_window_s = 70.0;
  cfg.cluster.min_reports = 4;
  return cfg;
}

/// Crash-stops `fraction` of the nodes (never the sink at grid (0, 0)) at
/// staggered mid-run times, drawn deterministically from `seed`.
void schedule_failures(core::SidSystemConfig& cfg, double fraction,
                       std::uint64_t seed) {
  const std::size_t n = cfg.network.rows * cfg.network.cols;
  const auto kill_count =
      static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5);
  if (kill_count == 0) return;
  std::vector<wsn::NodeId> candidates;
  for (wsn::NodeId id = 1; id < n; ++id) candidates.push_back(id);
  util::Rng rng(util::derive_seed(seed, 0xfa11));
  for (std::size_t i = 0; i < kill_count && !candidates.empty(); ++i) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(candidates.size()));
    const double when = rng.uniform(0.4, 0.8) * cfg.scenario.trace.duration_s;
    cfg.network.faults.crashes.push_back({candidates[idx], when});
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

/// One simulated pass.
TrialResult run_trial(const core::SidSystemConfig& cfg, int trial) {
  core::SidSystem system(cfg);
  const double grid_mid_x =
      0.5 * static_cast<double>(cfg.network.cols - 1) *
      cfg.network.spacing_m;
  const auto ship = bench::crossing_ship(
      10.0, 86.0 + 2.0 * static_cast<double>(trial % 3), grid_mid_x);
  const auto result =
      system.run(std::vector<wake::ShipTrackConfig>{ship});
  TrialResult out;
  for (const auto& r : result.sink_reports) {
    if (!r.decision.intrusion) continue;
    out.detected = true;
    if (!out.first_sink_s || r.sink_time_s < *out.first_sink_s) {
      out.first_sink_s = r.sink_time_s;
    }
  }
  if (const auto* recovery =
          system.registry().find_histogram("sid.recovery_time_s");
      recovery != nullptr && recovery->count() > 0) {
    out.median_recovery_s = recovery->percentile(0.5);
  }
  out.route_repairs = result.network_stats.route_repairs;
  out.false_suspicions = result.network_stats.false_suspicions;
  return out;
}

SweepPoint sweep_point(const SweepSettings& s, double x,
                       const std::function<void(core::SidSystemConfig&,
                                                std::uint64_t)>& apply) {
  SweepPoint point;
  point.x = x;
  std::vector<double> latencies;
  std::vector<double> recoveries;
  for (int trial = 0; trial < s.trials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(51 + trial);
    auto cfg = base_config(s, seed);
    apply(cfg, seed);
    ++point.trials;
    const TrialResult r = run_trial(cfg, trial);
    if (r.detected) {
      ++point.detections;
      latencies.push_back(*r.first_sink_s);
    }
    if (r.median_recovery_s) recoveries.push_back(*r.median_recovery_s);
    point.route_repairs += r.route_repairs;
    point.false_suspicions += r.false_suspicions;
  }
  const auto median = [](std::vector<double>& v) -> std::optional<double> {
    if (v.empty()) return std::nullopt;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  point.median_latency_s = median(latencies);
  point.median_recovery_s = median(recoveries);
  return point;
}

void emit_optional(const char* key, const std::optional<double>& v,
                   const char* suffix) {
  if (v) {
    std::printf("\"%s\": %.2f%s", key, *v, suffix);
  } else {
    std::printf("\"%s\": null%s", key, suffix);
  }
}

void emit_curve_json(const char* name, const char* x_key,
                     const std::vector<SweepPoint>& curve, bool last) {
  std::printf("  \"%s\": [\n", name);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& p = curve[i];
    std::printf("    {\"%s\": %.2f, \"detection_rate\": %.3f, "
                "\"detections\": %d, \"trials\": %d, ",
                x_key, p.x, p.detection_rate(), p.detections, p.trials);
    emit_optional("median_sink_latency_s", p.median_latency_s, "}");
    std::printf("%s\n", i + 1 < curve.size() ? "," : "");
  }
  std::printf("  ]%s\n", last ? "" : ",");
}

void emit_mode_json(const SweepPoint& p) {
  std::printf("{\"detection_rate\": %.3f, \"detections\": %d, "
              "\"trials\": %d, ",
              p.detection_rate(), p.detections, p.trials);
  emit_optional("median_recovery_s", p.median_recovery_s, ", ");
  std::printf("\"route_repairs\": %llu, \"false_suspicions\": %llu}",
              static_cast<unsigned long long>(p.route_repairs),
              static_cast<unsigned long long>(p.false_suspicions));
}

void emit_recovery_json(const std::vector<double>& fractions,
                        const std::vector<SweepPoint>& oracle,
                        const std::vector<SweepPoint>& selfheal,
                        bool last) {
  std::printf("  \"recovery_curve\": [\n");
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    std::printf("    {\"failure_fraction\": %.2f, \"oracle\": ",
                fractions[i]);
    emit_mode_json(oracle[i]);
    std::printf(", \"self_healing\": ");
    emit_mode_json(selfheal[i]);
    std::printf("}%s\n", i + 1 < fractions.size() ? "," : "");
  }
  std::printf("  ]%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  SweepSettings settings;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // Tiny grid, two sweep points per curve, enough to exercise every
      // fault path and the sanity gates inside a ctest budget.
      settings.rows = 4;
      settings.cols = 4;
      settings.duration_s = 160.0;
      settings.trials = 1;
      settings.failure_fractions = {0.0, 0.4};
      settings.burst_loss_bad = {0.0, 0.9};
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::vector<SweepPoint> failure_curve;
  for (double f : settings.failure_fractions) {
    failure_curve.push_back(sweep_point(
        settings, f, [f](core::SidSystemConfig& cfg, std::uint64_t seed) {
          schedule_failures(cfg, f, seed);
        }));
  }

  std::vector<SweepPoint> burst_curve;
  for (double loss_bad : settings.burst_loss_bad) {
    burst_curve.push_back(sweep_point(
        settings, loss_bad,
        [loss_bad](core::SidSystemConfig& cfg, std::uint64_t) {
          if (loss_bad <= 0.0) return;
          wsn::GilbertElliottParams params;
          params.p_enter_bad = 0.05;
          params.p_exit_bad = 0.25;
          params.loss_bad = loss_bad;
          cfg.network.faults.all_links_burst = params;
        }));
  }

  // Recovery curve: oracle routing (ground-truth liveness, the
  // upper-bound baseline) vs the self-healing substrate, same failure
  // plans.
  std::vector<SweepPoint> oracle_curve;
  std::vector<SweepPoint> selfheal_curve;
  for (double f : settings.failure_fractions) {
    oracle_curve.push_back(sweep_point(
        settings, f, [f](core::SidSystemConfig& cfg, std::uint64_t seed) {
          cfg.network.routing = wsn::RoutingMode::kOracle;
          schedule_failures(cfg, f, seed);
        }));
    selfheal_curve.push_back(sweep_point(
        settings, f, [f](core::SidSystemConfig& cfg, std::uint64_t seed) {
          cfg.network.routing = wsn::RoutingMode::kSelfHealing;
          schedule_failures(cfg, f, seed);
        }));
  }

  std::printf("{\n");
  std::printf("  \"grid\": \"%zux%zu\", \"trials_per_point\": %d, "
              "\"duration_s\": %.0f,\n",
              settings.rows, settings.cols, settings.trials,
              settings.duration_s);
  emit_curve_json("node_failure_curve", "failure_fraction", failure_curve,
                  false);
  emit_curve_json("burst_loss_curve", "burst_loss_bad", burst_curve, false);
  emit_recovery_json(settings.failure_fractions, oracle_curve,
                     selfheal_curve, true);
  std::printf("}\n");

  // Monotone sanity: adding faults must never *help* detection. (Rates
  // are noisy at few trials, so only the endpoints are compared.)
  const auto sane = [](const std::vector<SweepPoint>& curve) {
    return curve.empty() ||
           curve.front().detection_rate() >= curve.back().detection_rate();
  };
  if (!sane(failure_curve) || !sane(burst_curve)) {
    std::fprintf(stderr,
                 "robustness_sweep: detection rate increased with fault "
                 "load; curve is not monotone-sane\n");
    return 1;
  }

  // Acceptance gate: at the sweep point closest to 20 % failures,
  // self-healing recall must stay within max(0.1, 1/trials) of the
  // oracle baseline (1/trials absorbs quantization at few trials), and
  // any recorded recovery-time median must be finite.
  std::size_t at = 0;
  for (std::size_t i = 0; i < settings.failure_fractions.size(); ++i) {
    if (std::abs(settings.failure_fractions[i] - 0.2) <
        std::abs(settings.failure_fractions[at] - 0.2)) {
      at = i;
    }
  }
  const double tolerance =
      std::max(0.1, 1.0 / static_cast<double>(settings.trials));
  const double gap = oracle_curve[at].detection_rate() -
                     selfheal_curve[at].detection_rate();
  if (gap > tolerance) {
    std::fprintf(stderr,
                 "robustness_sweep: self-healing recall %.3f trails oracle "
                 "%.3f by more than %.3f at failure fraction %.2f\n",
                 selfheal_curve[at].detection_rate(),
                 oracle_curve[at].detection_rate(), tolerance,
                 settings.failure_fractions[at]);
    return 1;
  }
  for (const auto& p : selfheal_curve) {
    if (p.median_recovery_s && !std::isfinite(*p.median_recovery_s)) {
      std::fprintf(stderr,
                   "robustness_sweep: non-finite recovery-time median at "
                   "failure fraction %.2f\n",
                   p.x);
      return 1;
    }
  }
  return 0;
}
