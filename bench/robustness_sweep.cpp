// Robustness sweep: detection rate and sink latency as the fault load
// grows (node crash-stop failures, Gilbert–Elliott burst loss).
//
// Emits JSON: two curves of sink-level detection rate and median
// first-intrusion sink latency, one vs the fraction of failed nodes and
// one vs the burst-loss severity. The graceful-degradation machinery
// (member fallback on head death, bounded decision retry, duplicate
// suppression) is enabled, so the curves measure how the whole pipeline
// degrades rather than how fast it collapses.
//
// A monotone-sanity check (fault-free detection rate must be at least the
// heaviest-fault rate) makes the binary usable as a smoke test:
//
//   robustness_sweep [--smoke]
//
// --smoke runs a tiny grid with few trials (wired into ctest).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "core/sid_system.h"
#include "util/rng.h"
#include "wsn/faults.h"

namespace {

using namespace sid;

struct SweepSettings {
  std::size_t rows = 6;
  std::size_t cols = 6;
  double duration_s = 220.0;
  int trials = 3;
  std::vector<double> failure_fractions{0.0, 0.1, 0.2, 0.3, 0.5};
  std::vector<double> burst_loss_bad{0.0, 0.3, 0.6, 0.9};
};

struct SweepPoint {
  double x = 0.0;            ///< failure fraction or burst loss_bad
  int detections = 0;
  int trials = 0;
  std::optional<double> median_latency_s;
  double detection_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(detections) /
                             static_cast<double>(trials);
  }
};

core::SidSystemConfig base_config(const SweepSettings& s,
                                  std::uint64_t seed) {
  core::SidSystemConfig cfg;
  cfg.network.rows = s.rows;
  cfg.network.cols = s.cols;
  cfg.network.seed = seed;
  cfg.scenario.seed = seed * 17;
  cfg.scenario.trace.duration_s = s.duration_s;
  cfg.scenario.detector.threshold_multiplier_m = 2.0;
  cfg.scenario.detector.anomaly_frequency_threshold = 0.5;
  cfg.cluster.collection_window_s = 70.0;
  cfg.cluster.min_reports = 4;
  cfg.resilience.max_decision_retries = 2;
  return cfg;
}

/// Crash-stops `fraction` of the nodes (never the sink at grid (0, 0)) at
/// staggered mid-run times, drawn deterministically from `seed`.
void schedule_failures(core::SidSystemConfig& cfg, double fraction,
                       std::uint64_t seed) {
  const std::size_t n = cfg.network.rows * cfg.network.cols;
  const auto kill_count =
      static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5);
  if (kill_count == 0) return;
  std::vector<wsn::NodeId> candidates;
  for (wsn::NodeId id = 1; id < n; ++id) candidates.push_back(id);
  util::Rng rng(util::derive_seed(seed, 0xfa11));
  for (std::size_t i = 0; i < kill_count && !candidates.empty(); ++i) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(candidates.size()));
    const double when = rng.uniform(0.4, 0.8) * cfg.scenario.trace.duration_s;
    cfg.network.faults.crashes.push_back({candidates[idx], when});
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

/// One simulated pass; returns the earliest intrusion decision's sink
/// arrival time, or nullopt when the intrusion never reached the sink.
std::optional<double> run_trial(const core::SidSystemConfig& cfg,
                                int trial) {
  core::SidSystem system(cfg);
  const double grid_mid_x =
      0.5 * static_cast<double>(cfg.network.cols - 1) *
      cfg.network.spacing_m;
  const auto ship = bench::crossing_ship(
      10.0, 86.0 + 2.0 * static_cast<double>(trial % 3), grid_mid_x);
  const auto result =
      system.run(std::vector<wake::ShipTrackConfig>{ship});
  std::optional<double> first;
  for (const auto& r : result.sink_reports) {
    if (!r.decision.intrusion) continue;
    if (!first || r.sink_time_s < *first) first = r.sink_time_s;
  }
  return first;
}

SweepPoint sweep_point(const SweepSettings& s, double x,
                       const std::function<void(core::SidSystemConfig&,
                                                std::uint64_t)>& apply) {
  SweepPoint point;
  point.x = x;
  std::vector<double> latencies;
  for (int trial = 0; trial < s.trials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(51 + trial);
    auto cfg = base_config(s, seed);
    apply(cfg, seed);
    ++point.trials;
    if (const auto latency = run_trial(cfg, trial)) {
      ++point.detections;
      latencies.push_back(*latency);
    }
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    point.median_latency_s = latencies[latencies.size() / 2];
  }
  return point;
}

void emit_curve_json(const char* name, const char* x_key,
                     const std::vector<SweepPoint>& curve, bool last) {
  std::printf("  \"%s\": [\n", name);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const auto& p = curve[i];
    std::printf("    {\"%s\": %.2f, \"detection_rate\": %.3f, "
                "\"detections\": %d, \"trials\": %d, ",
                x_key, p.x, p.detection_rate(), p.detections, p.trials);
    if (p.median_latency_s) {
      std::printf("\"median_sink_latency_s\": %.2f}", *p.median_latency_s);
    } else {
      std::printf("\"median_sink_latency_s\": null}");
    }
    std::printf("%s\n", i + 1 < curve.size() ? "," : "");
  }
  std::printf("  ]%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  SweepSettings settings;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // Tiny grid, two sweep points per curve, enough to exercise every
      // fault path and the monotone check inside a ctest budget.
      settings.rows = 4;
      settings.cols = 4;
      settings.duration_s = 160.0;
      settings.trials = 1;
      settings.failure_fractions = {0.0, 0.5};
      settings.burst_loss_bad = {0.0, 0.9};
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::vector<SweepPoint> failure_curve;
  for (double f : settings.failure_fractions) {
    failure_curve.push_back(sweep_point(
        settings, f, [f](core::SidSystemConfig& cfg, std::uint64_t seed) {
          schedule_failures(cfg, f, seed);
        }));
  }

  std::vector<SweepPoint> burst_curve;
  for (double loss_bad : settings.burst_loss_bad) {
    burst_curve.push_back(sweep_point(
        settings, loss_bad,
        [loss_bad](core::SidSystemConfig& cfg, std::uint64_t) {
          if (loss_bad <= 0.0) return;
          wsn::GilbertElliottParams params;
          params.p_enter_bad = 0.05;
          params.p_exit_bad = 0.25;
          params.loss_bad = loss_bad;
          cfg.network.faults.all_links_burst = params;
        }));
  }

  std::printf("{\n");
  std::printf("  \"grid\": \"%zux%zu\", \"trials_per_point\": %d, "
              "\"duration_s\": %.0f,\n",
              settings.rows, settings.cols, settings.trials,
              settings.duration_s);
  emit_curve_json("node_failure_curve", "failure_fraction", failure_curve,
                  false);
  emit_curve_json("burst_loss_curve", "burst_loss_bad", burst_curve, true);
  std::printf("}\n");

  // Monotone sanity: adding faults must never *help* detection. (Rates
  // are noisy at few trials, so only the endpoints are compared.)
  const auto sane = [](const std::vector<SweepPoint>& curve) {
    return curve.empty() ||
           curve.front().detection_rate() >= curve.back().detection_rate();
  };
  if (!sane(failure_curve) || !sane(burst_curve)) {
    std::fprintf(stderr,
                 "robustness_sweep: detection rate increased with fault "
                 "load; curve is not monotone-sane\n");
    return 1;
  }
  return 0;
}
