// google-benchmark throughput of the detection stack: streaming node
// detector, correlation evaluation, speed inversion and wave-field
// synthesis (the simulation bottleneck).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_json_main.h"
#include "core/correlation.h"
#include "core/node_detector.h"
#include "core/scenario.h"
#include "core/speed_estimator.h"
#include "obs/profile.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "util/rng.h"
#include "util/units.h"
#include "wsn/network.h"

namespace {

using namespace sid;

void BM_NodeDetectorStream(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> samples(static_cast<std::size_t>(state.range(0)));
  for (auto& s : samples) s = 1024.0 + rng.normal(0.0, 30.0);
  for (auto _ : state) {
    // Streaming path bypasses process_trace, so record the stage here.
    SID_PROFILE_STAGE(obs::Stage::kDetector);
    core::NodeDetector detector{core::NodeDetectorConfig{}};
    double t = 0.0;
    for (double s : samples) {
      benchmark::DoNotOptimize(detector.process_sample(s, t));
      t += 0.02;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NodeDetectorStream)->Arg(12000)->Arg(60000);

void BM_CorrelationEvaluate(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<wsn::DetectionReport> reports;
  const auto n_rows = static_cast<std::int32_t>(state.range(0));
  for (std::int32_t row = 0; row < n_rows; ++row) {
    for (std::int32_t col = 0; col < 5; ++col) {
      wsn::DetectionReport r;
      r.grid_row = row;
      r.grid_col = col;
      r.position = {25.0 * col, 25.0 * row};
      r.onset_local_time_s = 100.0 + rng.uniform(0.0, 30.0);
      r.average_energy = rng.uniform(10.0, 300.0);
      reports.push_back(r);
    }
  }
  const auto line = util::Line2::through({60.0, 0.0}, 1.55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_correlation(reports, line));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reports.size()));
}
BENCHMARK(BM_CorrelationEvaluate)->Arg(4)->Arg(6)->Arg(20);

void BM_SpeedInversion(benchmark::State& state) {
  core::SpeedQuad quad;
  quad.t1 = 100.0;
  quad.t2 = 105.3;
  quad.t3 = 99.1;
  quad.t4 = 104.4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::estimate_speed_either_pairing(quad));
  }
}
BENCHMARK(BM_SpeedInversion);

void BM_WaveFieldAcceleration(benchmark::State& state) {
  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kModerate);
  ocean::WaveFieldConfig cfg;
  cfg.num_components = static_cast<std::size_t>(state.range(0));
  const ocean::WaveField field(*spectrum, cfg);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.acceleration({12.0, 34.0}, t));
    t += 0.02;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WaveFieldAcceleration)->Arg(64)->Arg(160)->Arg(512);

void BM_ScenarioFrontEnd(benchmark::State& state) {
  // Whole per-node synthesis + detection front end, parameterized by the
  // worker-thread count (ScenarioConfig::threads). Results are
  // bit-identical at any count, so the ratio of the /1 and /4 variants is
  // a pure wall-clock speedup measurement for the deterministic pool.
  wsn::NetworkConfig ncfg;
  ncfg.rows = 4;
  ncfg.cols = 4;
  const wsn::Network net(ncfg);

  core::ScenarioConfig cfg;
  cfg.trace.duration_s = 120.0;
  cfg.threads = static_cast<std::size_t>(state.range(0));

  wake::ShipTrackConfig ship;
  ship.start = {30.0, -400.0};
  ship.heading_rad = util::deg_to_rad(88.0);
  ship.speed_mps = util::knots_to_mps(10.0);
  const std::vector<wake::ShipTrackConfig> ships{ship};

  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate_node_reports(net, ships, cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(net.node_count()));
}
BENCHMARK(BM_ScenarioFrontEnd)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sid_bench_main(argc, argv, "BENCH_detector.json");
}
