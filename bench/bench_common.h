// Shared helpers for the per-figure/table benchmark harnesses.
//
// Every harness prints a header naming the paper artifact it reproduces,
// the workload parameters, and then the same rows/series the paper
// reports, via util::TablePrinter. Shapes (orderings, crossover points)
// are the reproduction target; absolute numbers differ because the
// substrate is synthetic (see DESIGN.md §1).
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "shipwave/ship.h"
#include "util/table.h"
#include "util/units.h"

namespace sid::bench {

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::cout << "\n==========================================================\n"
            << "SID reproduction: " << artifact << "\n"
            << description << "\n"
            << "==========================================================\n";
}

/// A ship crossing the grid roughly perpendicular to the rows (the Fig. 9
/// geometry): heading `heading_deg` from the row (x) axis, crossing the
/// line y = 0 at x = cross_x.
inline wake::ShipTrackConfig crossing_ship(double speed_knots,
                                           double heading_deg,
                                           double cross_x,
                                           double start_y = -400.0,
                                           double start_time_s = 0.0) {
  wake::ShipTrackConfig ship;
  const double phi = util::deg_to_rad(heading_deg);
  ship.start = {cross_x + start_y / std::tan(phi), start_y};
  ship.heading_rad = phi;
  ship.speed_mps = util::knots_to_mps(speed_knots);
  ship.start_time_s = start_time_s;
  return ship;
}

}  // namespace sid::bench
