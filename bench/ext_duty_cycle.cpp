// Extension bench (§IV-A): sentinel duty cycling — mean node power vs
// detection coverage for sentinel strides 1 (always on), 2 and 3, with
// fast and slow wake-up re-initialization.
#include <iostream>

#include "bench_common.h"
#include "core/duty_cycle.h"
#include "core/scenario.h"
#include "wsn/network.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Extension: sentinel duty cycling (paper §IV-A)",
      "Coverage (detections kept vs always-on) and mean node power for\n"
      "sentinel strides 1-3. 6x6 grid, 10 kn pass. Slow wake-up loses the\n"
      "pass for the sleepers; a fast re-init keeps most of it.");

  constexpr int kTrials = 6;
  util::TablePrinter table({"stride", "re-init (s)", "sentinels",
                            "coverage", "mean power (mW)",
                            "power saving"});

  for (std::size_t stride : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    for (double ready_delay : {12.0, 60.0}) {
      if (stride == 1 && ready_delay > 12.0) continue;  // baseline once
      double coverage_sum = 0.0;
      double power = 0.0;
      std::size_t sentinels = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        wsn::NetworkConfig net_cfg;
        net_cfg.rows = 6;
        net_cfg.cols = 6;
        net_cfg.seed = static_cast<std::uint64_t>(90 + trial);
        wsn::Network network(net_cfg);

        core::ScenarioConfig scen;
        scen.seed = static_cast<std::uint64_t>(800 + trial);
        scen.trace.duration_s = 260.0;
        scen.detector.threshold_multiplier_m = 2.0;
        scen.detector.anomaly_frequency_threshold = 0.5;

        const auto ship =
            bench::crossing_ship(10.0, 84.0 + 2.0 * trial, 60.0);
        const std::vector<wake::ShipTrackConfig> ships{ship};
        const auto run = core::simulate_node_reports(network, ships, scen);

        core::DutyCycleConfig duty;
        duty.sentinel_stride = stride;
        duty.ready_delay_s = ready_delay;
        const auto outcome = core::evaluate_duty_cycle(run, network, duty);
        coverage_sum += outcome.coverage();
        power = outcome.mean_power_mw;
        sentinels = outcome.sentinels;
      }
      const double always_on_power = core::DutyCycleConfig{}.active_power_mw;
      table.add_row(
          {std::to_string(stride), util::TablePrinter::num(ready_delay, 0),
           std::to_string(sentinels),
           util::TablePrinter::num(coverage_sum / kTrials, 2),
           util::TablePrinter::num(power, 2),
           util::TablePrinter::num(
               100.0 * (1.0 - power / always_on_power), 0) +
               " %"});
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check: stride 2 with a fast re-init keeps most of "
               "the always-on\ncoverage at a fraction of the power; a slow "
               "re-init or sparse sentinels\ntrade coverage away.\n";
  return 0;
}
