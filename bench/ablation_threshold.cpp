// Ablation: environment-adaptive threshold (Eq. 5) vs a frozen threshold.
//
// §IV-B motivates the adaptive design: "Because ocean waves change with
// wind and time, the threshold should reflect that changing." The
// workload calibrates both detectors on calm water, then roughens the
// sea. The frozen detector's false-alarm rate explodes; the adaptive one
// (with the slow storm path) recovers.
#include <iostream>

#include "bench_common.h"
#include "core/node_detector.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"

namespace {

/// Counts alarms in the second (rough) half of a calm->rough record.
std::size_t rough_phase_alarms(bool adaptive, std::uint64_t seed) {
  using namespace sid;
  core::NodeDetectorConfig cfg;
  cfg.threshold_multiplier_m = 2.5;
  cfg.anomaly_frequency_threshold = 0.5;
  cfg.refractory_s = 10.0;
  if (!adaptive) {
    // Freeze everything after initialization.
    cfg.beta1 = 0.999999;
    cfg.beta2 = 0.999999;
    cfg.storm_adaptation_beta = 1.0;
  }
  core::NodeDetector detector(cfg);

  sense::TraceConfig trace_cfg;
  trace_cfg.buoy.anchor = {0.0, 0.0};
  trace_cfg.buoy.seed = seed + 1;
  trace_cfg.accel.seed = seed + 2;

  // Calm phase: 200 s.
  const auto calm_spec = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  ocean::WaveFieldConfig f1;
  f1.seed = seed;
  const ocean::WaveField calm_field(*calm_spec, f1);
  trace_cfg.duration_s = 200.0;
  trace_cfg.start_time_s = 0.0;
  const auto calm_trace = sense::generate_ocean_trace(calm_field, trace_cfg);
  for (std::size_t i = 0; i < calm_trace.size(); ++i) {
    detector.process_sample(calm_trace.z[i], calm_trace.time_at(i));
  }

  // Rough phase: 400 s of a rougher sea.
  const auto rough_spec =
      ocean::make_sea_spectrum(ocean::SeaState::kModerate);
  ocean::WaveFieldConfig f2;
  f2.seed = seed + 7;
  const ocean::WaveField rough_field(*rough_spec, f2);
  trace_cfg.duration_s = 400.0;
  trace_cfg.start_time_s = 200.0;
  const auto rough_trace =
      sense::generate_ocean_trace(rough_field, trace_cfg);
  std::size_t alarms = 0;
  for (std::size_t i = 0; i < rough_trace.size(); ++i) {
    if (detector.process_sample(rough_trace.z[i], rough_trace.time_at(i))) {
      ++alarms;
    }
  }
  return alarms;
}

}  // namespace

int main() {
  using namespace sid;
  bench::print_header(
      "Ablation: adaptive vs frozen threshold",
      "False alarms during 400 s after the sea roughens from calm to\n"
      "moderate, with the threshold calibrated on calm water. Motivates\n"
      "the paper's Eq. 5 environment-adaptive design.");

  constexpr int kTrials = 8;
  std::size_t adaptive_total = 0;
  std::size_t frozen_total = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(600 + trial * 13);
    adaptive_total += rough_phase_alarms(true, seed);
    frozen_total += rough_phase_alarms(false, seed);
  }

  util::TablePrinter table(
      {"threshold", "false alarms (total)", "per 400 s trial"});
  table.add_row({"adaptive (Eq. 5 + storm path)",
                 std::to_string(adaptive_total),
                 util::TablePrinter::num(
                     static_cast<double>(adaptive_total) / kTrials, 1)});
  table.add_row({"frozen after init", std::to_string(frozen_total),
                 util::TablePrinter::num(
                     static_cast<double>(frozen_total) / kTrials, 1)});
  table.print(std::cout);

  std::cout << "\nShape check: the frozen detector raises several times "
               "more false alarms\nafter the weather change.\n";
  return 0;
}
