// google-benchmark throughput of the multi-modal extension (§VII):
// hydrophone contact synthesis, batch accel+acoustic fusion, and the
// sink's streaming MultiModalFuser. Shares the perf_* harness
// (bench_json_main.h): --smoke dumps the per-stage wall-time histograms
// as schema-stable BENCH_acoustic_fusion.json (validated in CI by
// scripts/check_obs_schema.py, trended against bench/baselines/).
//
// The scientific accuracy sweep for this extension lives in
// bench/fusion_ablation.cpp; this binary only tracks its cost.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "acoustic/hydrophone.h"
#include "bench_common.h"
#include "bench_json_main.h"
#include "core/fusion.h"
#include "core/node_detector.h"
#include "obs/profile.h"
#include "shipwave/ship.h"
#include "util/rng.h"

namespace {

using namespace sid;

void BM_HydrophoneContactSweep(benchmark::State& state) {
  auto ship_cfg = bench::crossing_ship(10.0, 90.0, 0.0);
  ship_cfg.start_time_s = 15.0;
  const wake::ShipTrack track(ship_cfg);
  const std::vector<wake::ShipTrack> ships{track};
  acoustic::HydrophoneConfig cfg;
  cfg.seed = 101;
  const double duration_s = static_cast<double>(state.range(0));
  for (auto _ : state) {
    // The hydrophone model is front-end synthesis; record it under the
    // synthesis stage like the wave-field benches do.
    SID_PROFILE_STAGE(obs::Stage::kSynthesis);
    acoustic::Hydrophone phone({120.0, 0.0}, cfg);
    benchmark::DoNotOptimize(
        phone.run(ships, 0.0, duration_s, ocean::SeaState::kCalm));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HydrophoneContactSweep)->Arg(300)->Arg(1800);

// Synthetic interleaved evidence: n alarms and n contacts spread over a
// window sized so some pairs associate and some stand alone.
void make_evidence(std::size_t n, std::vector<core::Alarm>& alarms,
                   std::vector<acoustic::AcousticContact>& contacts) {
  util::Rng rng(7);
  double t = 100.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform(5.0, 45.0);
    core::Alarm alarm;
    alarm.onset_time_s = t;
    alarms.push_back(alarm);
    acoustic::AcousticContact contact;
    contact.time_s = t + rng.uniform(-20.0, 60.0);
    contact.snr_db = rng.uniform(6.0, 18.0);
    contacts.push_back(contact);
  }
}

void BM_FuseDetectionsBatch(benchmark::State& state) {
  std::vector<core::Alarm> alarms;
  std::vector<acoustic::AcousticContact> contacts;
  make_evidence(static_cast<std::size_t>(state.range(0)), alarms, contacts);
  core::FusionConfig cfg;
  cfg.policy = state.range(1) == 0 ? core::FusionPolicy::kOr
                                   : core::FusionPolicy::kAnd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fuse_detections(alarms, contacts, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_FuseDetectionsBatch)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 1});

void BM_MultiModalStreamingIngest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // Pre-drawn jitter keeps the RNG off the measured path.
  util::Rng rng(11);
  std::vector<double> jitter(n);
  for (auto& j : jitter) j = rng.uniform(0.0, 25.0);
  core::MultiModalConfig cfg;
  for (auto _ : state) {
    // The streaming path bypasses fuse_detections, so record the fusion
    // stage here.
    SID_PROFILE_STAGE(obs::Stage::kFusion);
    core::MultiModalFuser fuser(cfg);
    fuser.reset(0.0);
    double t = 100.0;
    for (std::size_t i = 0; i < n; ++i) {
      t += jitter[i];
      const auto modality =
          (i % 2 == 0) ? core::Modality::kAccel : core::Modality::kAcoustic;
      benchmark::DoNotOptimize(
          fuser.ingest(modality, t, 0.7, 0x1000 + i));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MultiModalStreamingIngest)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  return sid_bench_main(argc, argv, "BENCH_acoustic_fusion.json");
}
