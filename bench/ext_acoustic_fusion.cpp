// Extension bench (§VII future work): accelerometer + underwater
// acoustic fusion. Detection ratio and false-alarm behaviour vs the
// ship's closest-point-of-approach distance, for accel-only,
// acoustic-only, OR-fusion and AND-fusion.
//
// Expected shape: the wake detector dies out with distance (d^{-1/3}
// height decay against a fixed sea background) while the hydrophone
// reaches much farther; OR extends coverage, AND suppresses the
// single-modality false alarms.
#include <iostream>

#include "bench_common.h"
#include "acoustic/hydrophone.h"
#include "core/fusion.h"
#include "core/node_detector.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"

namespace {

struct TrialOutcome {
  bool accel = false;
  bool acoustic = false;
  bool fused_or = false;
  bool fused_and = false;
  std::size_t accel_false = 0;
  std::size_t acoustic_false = 0;
  std::size_t or_false = 0;
  std::size_t and_false = 0;
};

TrialOutcome run_trial(double cpa_m, int trial) {
  using namespace sid;
  const auto seed = static_cast<std::uint64_t>(1000 + trial * 7 +
                                               static_cast<int>(cpa_m));
  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = seed;
  const ocean::WaveField field(*spectrum, field_cfg);

  auto ship_cfg = bench::crossing_ship(10.0, 90.0, 0.0);
  ship_cfg.start_time_s = 15.0 + 2.0 * trial;
  const wake::ShipTrack track(ship_cfg);
  const util::Vec2 sensor_pos{cpa_m, 0.0};

  // Accelerometer path.
  std::vector<wake::WakeTrain> trains;
  double arrival = -1.0;
  if (auto train = wake::make_wake_train(track, sensor_pos)) {
    arrival = train->params().arrival_time_s;
    trains.push_back(*train);
  }
  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 300.0;
  trace_cfg.buoy.anchor = sensor_pos;
  trace_cfg.buoy.seed = seed + 1;
  trace_cfg.accel.seed = seed + 2;
  const auto trace = sense::generate_trace(field, trains, trace_cfg);

  core::NodeDetectorConfig det_cfg;
  det_cfg.threshold_multiplier_m = 2.5;
  det_cfg.anomaly_frequency_threshold = 0.55;
  core::NodeDetector detector(det_cfg);
  const auto alarms = detector.process_trace(trace);

  // Acoustic path (hydrophone moored under the same buoy).
  acoustic::HydrophoneConfig phone_cfg;
  phone_cfg.false_alarm_rate_per_hour = 12.0;
  phone_cfg.seed = seed + 3;
  acoustic::Hydrophone phone(sensor_pos, phone_cfg);
  const std::vector<wake::ShipTrack> ships{track};
  const auto contacts =
      phone.run(ships, 0.0, trace_cfg.duration_s, ocean::SeaState::kCalm);

  // Truth window: engine noise peaks at CPA (abeam time), the wake a bit
  // later; accept [cpa_time - 40, arrival + 40].
  const double cpa_time =
      ship_cfg.start_time_s + (400.0) / ship_cfg.speed_mps;
  const double window_lo = cpa_time - 60.0;
  const double window_hi = (arrival > 0 ? arrival : cpa_time) + 40.0;
  const auto in_window = [&](double t) {
    return t >= window_lo && t <= window_hi;
  };

  TrialOutcome outcome;
  for (const auto& a : alarms) {
    if (in_window(a.onset_time_s)) {
      outcome.accel = true;
    } else {
      ++outcome.accel_false;
    }
  }
  for (const auto& c : contacts) {
    if (in_window(c.time_s)) {
      outcome.acoustic = true;
    } else {
      ++outcome.acoustic_false;
    }
  }
  core::FusionConfig or_cfg;
  or_cfg.policy = core::FusionPolicy::kOr;
  core::FusionConfig and_cfg;
  and_cfg.policy = core::FusionPolicy::kAnd;
  for (const auto& f : core::fuse_detections(alarms, contacts, or_cfg)) {
    if (in_window(f.time_s)) {
      outcome.fused_or = true;
    } else {
      ++outcome.or_false;
    }
  }
  for (const auto& f : core::fuse_detections(alarms, contacts, and_cfg)) {
    if (in_window(f.time_s)) {
      outcome.fused_and = true;
    } else {
      ++outcome.and_false;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace sid;
  bench::print_header(
      "Extension: accelerometer + acoustic fusion (paper §VII)",
      "Detection ratio and false alarms per trial vs closest approach,\n"
      "10 kn boat, calm sea, node settings M=2.5, a_f=55 %.");

  constexpr int kTrials = 10;
  util::TablePrinter table({"CPA (m)", "accel", "acoustic", "fused OR",
                            "fused AND", "FA/trial accel", "FA/trial AND"});
  for (double cpa : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    int accel = 0, acoustic = 0, fused_or = 0, fused_and = 0;
    std::size_t accel_false = 0, and_false = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto outcome = run_trial(cpa, trial);
      accel += outcome.accel;
      acoustic += outcome.acoustic;
      fused_or += outcome.fused_or;
      fused_and += outcome.fused_and;
      accel_false += outcome.accel_false;
      and_false += outcome.and_false;
    }
    auto ratio = [&](int hits) {
      return util::TablePrinter::num(static_cast<double>(hits) / kTrials, 2);
    };
    table.add_row({util::TablePrinter::num(cpa, 0), ratio(accel),
                   ratio(acoustic), ratio(fused_or), ratio(fused_and),
                   util::TablePrinter::num(
                       static_cast<double>(accel_false) / kTrials, 1),
                   util::TablePrinter::num(
                       static_cast<double>(and_false) / kTrials, 1)});
  }
  table.print(std::cout);

  std::cout << "\nShape check: wake detection dies out with distance while "
               "the hydrophone\nreaches farther; OR tracks the better "
               "modality, AND strips nearly all the\nsingle-modality false "
               "alarms at short range.\n";
  return 0;
}
