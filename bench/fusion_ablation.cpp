// Multi-modal fusion ablation: sink detection recall under growing
// fault/attack load, for five fusion arms on identical scenarios:
//
//   accel_only    — fuser's acoustic lane disabled (the paper's pipeline)
//   acoustic_only — fuser's accel lane disabled (hydrophone contacts only)
//   or_fused      — OR over both modalities
//   and_fused     — AND (cross-modal agreement) with graceful degradation
//   degraded      — AND with the acoustic lane quarantined from the start
//                   (the ladder's surviving-modality rung, pinned)
//
// Every arm runs defended (wsn/defense with the acoustic plausibility
// checks) over the same fault + attack plan: hydrophone contact dropout,
// clutter storms, receiver gain drift, accelerometer stuck-at faults,
// and forged acoustic contacts, all scaled by the disrupted-node
// fraction. Emits schema-stable JSON ("fusion_curve"). Built-in
// acceptance gates (wired into ctest under the `robustness` label):
//   1. at the point nearest 20 % disrupted, OR-fused recall must be >=
//      accel-only recall and >= acoustic-only recall (fusion may never
//      cost coverage);
//   2. zero forged acoustic contacts accepted at the sink, anywhere on
//      the curve (ground truth by construction: forged streams start at
//      ForgeryAttack::seq_base = 1 << 20);
//   3. zero false quarantines anywhere — faulted nodes are honest, and
//      the defense may never revoke an honest identity.
//
//   fusion_ablation [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/sid_system.h"
#include "util/rng.h"
#include "wsn/faults.h"

namespace {

using namespace sid;

struct SweepSettings {
  std::size_t rows = 6;
  std::size_t cols = 6;
  double duration_s = 220.0;
  int trials = 3;
  std::vector<double> fractions{0.0, 0.1, 0.2, 0.3, 0.4};
};

enum class Arm { kAccelOnly, kAcousticOnly, kOr, kAnd, kDegraded };

constexpr const char* kArmKeys[] = {"accel_only", "acoustic_only", "or_fused",
                                    "and_fused", "degraded"};
constexpr Arm kArms[] = {Arm::kAccelOnly, Arm::kAcousticOnly, Arm::kOr,
                         Arm::kAnd, Arm::kDegraded};

struct ArmPoint {
  int detections = 0;
  int trials = 0;
  std::uint64_t fused = 0;
  std::uint64_t contacts_sent = 0;
  std::uint64_t contacts_accepted = 0;
  /// Forged acoustic contacts that made it into the sink's accepted
  /// stream (must be zero: gate 2).
  std::uint64_t forged_accepted = 0;
  std::uint64_t acoustic_rejects = 0;
  std::uint64_t forgeries_injected = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t false_quarantines = 0;
  double recall() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(detections) /
                             static_cast<double>(trials);
  }
};

struct SweepPoint {
  double fraction = 0.0;
  ArmPoint arms[5];
};

core::SidSystemConfig base_config(const SweepSettings& s,
                                  std::uint64_t seed) {
  core::SidSystemConfig cfg;
  cfg.network.rows = s.rows;
  cfg.network.cols = s.cols;
  cfg.network.seed = seed;
  cfg.scenario.seed = seed * 17;
  cfg.scenario.trace.duration_s = s.duration_s;
  cfg.scenario.detector.threshold_multiplier_m = 2.0;
  cfg.scenario.detector.anomaly_frequency_threshold = 0.5;
  cfg.cluster.collection_window_s = 70.0;
  cfg.cluster.min_reports = 4;
  // Multi-modal deployment: every second buoy carries a hydrophone, and
  // the sink-side ledgers run the acoustic plausibility checks.
  cfg.scenario.acoustic.enabled = true;
  cfg.scenario.acoustic.node_stride = 2;
  cfg.network.defense.enabled = true;
  return cfg;
}

void apply_arm(core::SidSystemConfig& cfg, Arm arm) {
  cfg.fusion.base.policy = core::FusionPolicy::kAnd;
  switch (arm) {
    case Arm::kAccelOnly:
      cfg.fusion.use_acoustic = false;
      break;
    case Arm::kAcousticOnly:
      cfg.fusion.use_accel = false;
      break;
    case Arm::kOr:
      cfg.fusion.base.policy = core::FusionPolicy::kOr;
      break;
    case Arm::kAnd:
      break;
    case Arm::kDegraded:
      // The ladder's surviving-modality rung, pinned from t=0: AND whose
      // acoustic lane is quarantined degrades to OR over the accel lane.
      cfg.fusion.base.acoustic_quarantined = true;
      break;
  }
}

/// Disrupts `fraction` of the non-sink nodes, deterministic in `seed`:
/// cycles forged acoustic contacts, contact dropout, clutter storms,
/// accelerometer stuck-at faults, and receiver gain drift.
void schedule_disruption(core::SidSystemConfig& cfg, double fraction,
                         std::uint64_t seed) {
  const std::size_t n = cfg.network.rows * cfg.network.cols;
  const auto count =
      static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5);
  if (count == 0) return;
  std::vector<wsn::NodeId> candidates;
  for (wsn::NodeId id = 1; id < n; ++id) candidates.push_back(id);
  util::Rng rng(util::derive_seed(seed, 0xfab1e50ULL));
  const double start_s = 20.0;
  const double end_s = cfg.scenario.trace.duration_s;
  for (std::size_t i = 0; i < count && !candidates.empty(); ++i) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(candidates.size()));
    const wsn::NodeId node = candidates[idx];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
    switch (i % 5) {
      case 0: {
        // Phantom-vessel injection on the acoustic channel: the attacker
        // reports under its own (coherent) identity with plausible SNRs,
        // so only the contact-stream watermark discipline catches it.
        wsn::ForgeryAttack atk;
        atk.attacker = node;
        atk.victim = node;
        atk.target = 0;
        atk.traffic = wsn::ForgedTraffic::kAcousticContacts;
        atk.start_s = start_s;
        atk.end_s = end_s;
        atk.period_s = 6.0;
        cfg.network.attacks.forgeries.push_back(atk);
        break;
      }
      case 1: {
        wsn::AcousticFaultSpec spec;
        spec.node = node;
        spec.kind = wsn::AcousticFaultKind::kContactDropout;
        spec.start_s = 0.3 * end_s;
        spec.drop_fraction = 0.85;
        cfg.network.faults.acoustic_faults.push_back(spec);
        break;
      }
      case 2: {
        wsn::AcousticFaultSpec spec;
        spec.node = node;
        spec.kind = wsn::AcousticFaultKind::kClutterStorm;
        spec.start_s = start_s;
        spec.end_s = end_s;
        spec.clutter_rate_per_hour = 240.0;
        cfg.network.faults.acoustic_faults.push_back(spec);
        break;
      }
      case 3: {
        wsn::SensorFaultSpec spec;
        spec.node = node;
        spec.kind = wsn::SensorFaultKind::kStuckAt;
        spec.start_s = 0.3 * end_s;
        cfg.network.faults.sensor_faults.push_back(spec);
        break;
      }
      default: {
        wsn::AcousticFaultSpec spec;
        spec.node = node;
        spec.kind = wsn::AcousticFaultKind::kGainDrift;
        spec.start_s = 0.25 * end_s;
        spec.gain_drift_db_per_s = 0.1;
        cfg.network.faults.acoustic_faults.push_back(spec);
        break;
      }
    }
  }
}

ArmPoint run_arm(const SweepSettings& s, double fraction, Arm arm) {
  ArmPoint point;
  for (int trial = 0; trial < s.trials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(91 + trial);
    auto cfg = base_config(s, seed);
    schedule_disruption(cfg, fraction, seed);
    apply_arm(cfg, arm);
    core::SidSystem system(cfg);
    const double grid_mid_x = 0.5 *
                              static_cast<double>(cfg.network.cols - 1) *
                              cfg.network.spacing_m;
    const auto ship = bench::crossing_ship(
        10.0, 86.0 + 2.0 * static_cast<double>(trial % 3), grid_mid_x);
    const auto result =
        system.run(std::vector<wake::ShipTrackConfig>{ship});
    ++point.trials;
    if (result.fused_detections > 0) ++point.detections;
    point.fused += result.fused_detections;
    point.contacts_sent += result.acoustic_contacts_sent;
    point.contacts_accepted += result.acoustic_contacts_accepted;
    for (const auto& contact : result.acoustic_contacts) {
      // Ground truth by construction: legitimate origin-side thinning
      // re-sequences contacts from 0; forged streams start at 1 << 20.
      if (contact.seq >= (1u << 20)) ++point.forged_accepted;
    }
    const auto& net = result.network_stats;
    point.acoustic_rejects += net.defense_acoustic_rejects;
    point.forgeries_injected += net.attack_acoustic_forgeries;
    point.quarantines += net.defense_quarantines;
    point.false_quarantines += net.defense_false_quarantines;
  }
  return point;
}

void emit_arm(const char* key, const ArmPoint& a, const char* suffix) {
  std::printf("\"%s\": {\"recall\": %.3f, \"detections\": %d, "
              "\"trials\": %d, \"fused\": %llu, \"contacts_sent\": %llu, "
              "\"contacts_accepted\": %llu, \"forged_accepted\": %llu, "
              "\"acoustic_rejects\": %llu, \"forgeries_injected\": %llu, "
              "\"quarantines\": %llu, \"false_quarantines\": %llu}%s",
              key, a.recall(), a.detections, a.trials,
              static_cast<unsigned long long>(a.fused),
              static_cast<unsigned long long>(a.contacts_sent),
              static_cast<unsigned long long>(a.contacts_accepted),
              static_cast<unsigned long long>(a.forged_accepted),
              static_cast<unsigned long long>(a.acoustic_rejects),
              static_cast<unsigned long long>(a.forgeries_injected),
              static_cast<unsigned long long>(a.quarantines),
              static_cast<unsigned long long>(a.false_quarantines), suffix);
}

}  // namespace

int main(int argc, char** argv) {
  SweepSettings settings;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // Tiny grid, two sweep points: exercises every fault/attack class,
      // all five arms, and the gates inside a ctest/ASan budget.
      settings.rows = 4;
      settings.cols = 4;
      settings.duration_s = 160.0;
      settings.trials = 1;
      settings.fractions = {0.0, 0.2};
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::vector<SweepPoint> curve;
  for (const double fraction : settings.fractions) {
    SweepPoint point;
    point.fraction = fraction;
    for (std::size_t a = 0; a < 5; ++a) {
      point.arms[a] = run_arm(settings, fraction, kArms[a]);
    }
    curve.push_back(point);
  }

  std::printf("{\n");
  std::printf("  \"grid\": \"%zux%zu\", \"trials_per_point\": %d, "
              "\"duration_s\": %.0f,\n",
              settings.rows, settings.cols, settings.trials,
              settings.duration_s);
  std::printf("  \"fusion_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("    {\"fraction\": %.2f, ", curve[i].fraction);
    for (std::size_t a = 0; a < 5; ++a) {
      emit_arm(kArmKeys[a], curve[i].arms[a], a + 1 < 5 ? ", " : "}");
    }
    std::printf("%s\n", i + 1 < curve.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  // Gate 1: fusion may never cost coverage. At the point nearest 20 %
  // disrupted, OR-fused recall >= each single-modality recall.
  std::size_t at = 0;
  for (std::size_t i = 0; i < settings.fractions.size(); ++i) {
    if (std::abs(settings.fractions[i] - 0.2) <
        std::abs(settings.fractions[at] - 0.2)) {
      at = i;
    }
  }
  {
    const double fused_recall = curve[at].arms[2].recall();  // or_fused
    const double accel = curve[at].arms[0].recall();
    const double acoustic = curve[at].arms[1].recall();
    if (fused_recall < accel || fused_recall < acoustic) {
      std::fprintf(stderr,
                   "fusion_ablation: OR-fused recall %.3f below a single "
                   "modality (accel %.3f, acoustic %.3f) at fraction %.2f\n",
                   fused_recall, accel, acoustic, settings.fractions[at]);
      return 1;
    }
  }

  // Gate 2: no forged acoustic contact may ever be accepted; and when
  // forgeries were injected, the defense must actually be filtering.
  for (const auto& p : curve) {
    for (std::size_t a = 0; a < 5; ++a) {
      if (p.arms[a].forged_accepted != 0) {
        std::fprintf(stderr,
                     "fusion_ablation: %llu forged acoustic contacts "
                     "accepted (arm %s, fraction %.2f)\n",
                     static_cast<unsigned long long>(
                         p.arms[a].forged_accepted),
                     kArmKeys[a], p.fraction);
        return 1;
      }
      if (p.arms[a].forgeries_injected > 0 &&
          p.arms[a].acoustic_rejects == 0) {
        std::fprintf(stderr,
                     "fusion_ablation: %llu forged contacts injected but "
                     "the ledger rejected none (arm %s, fraction %.2f)\n",
                     static_cast<unsigned long long>(
                         p.arms[a].forgeries_injected),
                     kArmKeys[a], p.fraction);
        return 1;
      }
    }
  }

  // Gate 3: faulted nodes are honest — zero false quarantines anywhere.
  for (const auto& p : curve) {
    for (std::size_t a = 0; a < 5; ++a) {
      if (p.arms[a].false_quarantines != 0) {
        std::fprintf(stderr,
                     "fusion_ablation: %llu false quarantines (arm %s, "
                     "fraction %.2f)\n",
                     static_cast<unsigned long long>(
                         p.arms[a].false_quarantines),
                     kArmKeys[a], p.fraction);
        return 1;
      }
    }
  }
  return 0;
}
