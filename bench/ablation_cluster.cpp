// Ablation: spatio-temporal correlation gating on vs off (§IV-C).
//
// The node level deliberately runs at a permissive operating point, so
// false alarms are plentiful. Without the correlation gate (C threshold
// 0), any temporary cluster that collects enough reports reaches the
// sink as an "intrusion"; with the gate at 0.4 only ordered (ship-like)
// report sets pass. The bench measures sink-level false positives on
// quiet seas and sink-level detections on real passes, with and without
// the gate.
#include <iostream>

#include "bench_common.h"
#include "core/sid_system.h"

namespace {

sid::core::SidSystemConfig base_config(std::uint64_t seed) {
  sid::core::SidSystemConfig cfg;
  cfg.network.rows = 6;
  cfg.network.cols = 6;
  cfg.network.seed = seed;
  cfg.scenario.seed = seed * 17;
  cfg.scenario.trace.duration_s = 260.0;
  // Moderately permissive node level: sparse-but-regular false alarms
  // (at saturating settings like M=1.5/a_f=0.4 even propagating wave
  // groups sweep the grid like weak ships and no report-level statistic
  // can separate them; the paper's Table I likewise harvests *sparse*
  // false alarms).
  cfg.scenario.detector.threshold_multiplier_m = 2.0;
  cfg.scenario.detector.anomaly_frequency_threshold = 0.45;
  cfg.cluster.min_reports = 4;
  return cfg;
}

}  // namespace

int main() {
  using namespace sid;
  bench::print_header(
      "Ablation: cluster-level correlation gate",
      "Sink-level outcomes with the C > 0.4 gate vs no gate, at a\n"
      "permissive node operating point (M = 2.0, a_f = 45 %).");

  constexpr int kTrials = 6;
  int fp_gated = 0, fp_ungated = 0;
  int tp_gated = 0, tp_ungated = 0;

  for (int trial = 0; trial < kTrials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(50 + trial);
    for (bool gated : {true, false}) {
      auto cfg = base_config(seed);
      if (!gated) {
        cfg.cluster.correlation_threshold = 0.0;
        cfg.cluster.min_rows_for_threshold = 1;
        cfg.cluster.min_sweep_consistency = 0.0;
      }
      // Quiet sea: any intrusion report is a false positive.
      {
        core::SidSystem system(cfg);
        const bool intrusion = system.run({}).intrusion_reported();
        (gated ? fp_gated : fp_ungated) += intrusion ? 1 : 0;
      }
      // Real pass: an intrusion report is a true positive.
      {
        core::SidSystem system(cfg);
        const auto ship =
            bench::crossing_ship(10.0, 85.0 + 2.0 * trial, 60.0);
        const bool intrusion =
            system.run(std::vector<wake::ShipTrackConfig>{ship})
                .intrusion_reported();
        (gated ? tp_gated : tp_ungated) += intrusion ? 1 : 0;
      }
    }
  }

  util::TablePrinter table({"configuration", "quiet-sea false positives",
                            "ship-pass detections"});
  table.add_row({"correlation gate (C > 0.4, >= 4 rows)",
                 std::to_string(fp_gated) + " / " + std::to_string(kTrials),
                 std::to_string(tp_gated) + " / " + std::to_string(kTrials)});
  table.add_row({"no gate",
                 std::to_string(fp_ungated) + " / " + std::to_string(kTrials),
                 std::to_string(tp_ungated) + " / " +
                     std::to_string(kTrials)});
  table.print(std::cout);

  std::cout << "\nShape check: without the gate the sink sees false "
               "intrusions on quiet seas;\nwith the gate it keeps the real "
               "detections and drops the false ones\n(the paper's §IV-C "
               "reliability argument).\n";
  return 0;
}
