// Reproduces Fig. 7: Morlet wavelet transform of the accelerometer
// signal, showing (a) the raw signal and (b) the scalogram with the
// ship-wave energy concentrated in the low-frequency scales around the
// pass. The harness prints scale-band energies over time for ocean-only
// vs ocean+ship records.
#include <iostream>

#include "bench_common.h"
#include "core/spectral_classifier.h"
#include "dsp/wavelet.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"

namespace {

struct Record {
  std::vector<double> z;
  double wake_start = -1.0;
  double wake_end = -1.0;
};

Record record(bool with_ship, std::uint64_t seed) {
  using namespace sid;
  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = seed;
  const ocean::WaveField field(*spectrum, field_cfg);

  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 120.0;
  trace_cfg.buoy.anchor = {25.0, 0.0};
  trace_cfg.buoy.seed = seed + 1;
  trace_cfg.accel.seed = seed + 2;

  std::vector<wake::WakeTrain> trains;
  Record out;
  if (with_ship) {
    const auto ship = bench::crossing_ship(12.0, 90.0, 0.0, -250.0);
    if (auto train = wake::make_wake_train(wake::ShipTrack(ship),
                                           {25.0, 0.0})) {
      out.wake_start = train->params().arrival_time_s;
      out.wake_end = out.wake_start + train->params().duration_s;
      trains.push_back(*train);
    }
  }
  out.z = sense::generate_trace(field, trains, trace_cfg).z_centered();
  return out;
}

}  // namespace

int main() {
  using namespace sid;
  bench::print_header(
      "Figure 7",
      "Morlet continuous wavelet transform of the z signal (32 log-spaced\n"
      "scales, 0.05-5 Hz). Expected shape: ship-wave energy concentrates\n"
      "in the low-frequency scales, localized at the pass time.");

  dsp::CwtConfig cwt_cfg;
  cwt_cfg.min_frequency_hz = 0.05;
  cwt_cfg.max_frequency_hz = 5.0;
  cwt_cfg.num_scales = 32;

  for (bool with_ship : {false, true}) {
    const auto rec = record(with_ship, 97531);
    const auto scalogram = dsp::cwt_morlet(rec.z, cwt_cfg);

    std::cout << "\n--- " << (with_ship ? "(b) ocean + ship" : "(a) ocean only")
              << " ---\n";
    // Band energy in 20 s windows, split into three frequency bands.
    util::TablePrinter table(
        {"t (s)", "E[0.05-0.5 Hz]", "E[0.5-1.5 Hz]", "E[1.5-5 Hz]",
         "in wake window"});
    const std::size_t window = 20 * 50;
    for (std::size_t start = 0; start + window <= rec.z.size();
         start += window) {
      double low = 0.0, mid = 0.0, high = 0.0;
      for (std::size_t s = 0; s < scalogram.frequencies_hz.size(); ++s) {
        const double f = scalogram.frequencies_hz[s];
        double sum = 0.0;
        for (std::size_t t = start; t < start + window; ++t) {
          sum += scalogram.power[s][t];
        }
        if (f < 0.5) {
          low += sum;
        } else if (f < 1.5) {
          mid += sum;
        } else {
          high += sum;
        }
      }
      const double t0 = static_cast<double>(start) / 50.0;
      const double t1 = t0 + 20.0;
      const bool in_wake = with_ship && rec.wake_start >= t0 - 5.0 &&
                           rec.wake_start <= t1 + 5.0;
      table.add_row({util::TablePrinter::num(t0, 0),
                     util::TablePrinter::num(low / 1e6, 1),
                     util::TablePrinter::num(mid / 1e6, 1),
                     util::TablePrinter::num(high / 1e6, 1),
                     in_wake ? "  <-- ship" : ""});
    }
    table.print(std::cout);
    std::cout << "low-band fraction of total scalogram energy: "
              << util::TablePrinter::num(
                     core::low_band_energy_ratio(scalogram, 1.0), 3)
              << "\n";
  }

  std::cout << "\nShape check vs paper: in (b) the low/mid-frequency band "
               "energy jumps in the\nwindow containing the pass, and the "
               "low-band fraction is at least as large\nas in (a).\n";
  return 0;
}
