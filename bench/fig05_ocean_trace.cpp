// Reproduces Fig. 5: "Ocean waves measured by three-axis accelerometer"
// — a 250 s three-axis count trace from a buoy riding moderate open
// water. The paper's trace shows x/y fluctuating by hundreds of counts
// around 0 and z around ~1000 counts (1 g); the harness prints per-axis
// summary statistics and a coarse down-sampled series.
#include <iostream>

#include "bench_common.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "util/stats.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Figure 5",
      "250 s three-axis ocean-wave trace (no ship), 50 Hz, ADC counts.\n"
      "Expected shape: x/y centred near 0, z centred near 1024 (1 g),\n"
      "all axes fluctuating by tens-to-hundreds of counts.");

  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kModerate);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = 2025;
  const ocean::WaveField field(*spectrum, field_cfg);

  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 250.0;
  trace_cfg.buoy.anchor = {0.0, 0.0};
  const auto trace = sense::generate_ocean_trace(field, trace_cfg);

  util::TablePrinter stats({"axis", "mean (counts)", "std", "min", "max"});
  for (const auto& [name, axis] :
       {std::pair{"x", &trace.x}, {"y", &trace.y}, {"z", &trace.z}}) {
    util::RunningStats rs;
    for (double v : *axis) rs.add(v);
    stats.add_row({name, util::TablePrinter::num(rs.mean(), 1),
                   util::TablePrinter::num(rs.stddev(), 1),
                   util::TablePrinter::num(rs.min(), 0),
                   util::TablePrinter::num(rs.max(), 0)});
  }
  stats.print(std::cout);

  std::cout << "\n10 s-average |deviation| series (counts), one row per 25 s:\n";
  util::TablePrinter series({"t (s)", "x dev", "y dev", "z dev (from 1 g)"});
  const std::size_t chunk = 25 * 50;
  for (std::size_t start = 0; start + chunk <= trace.size(); start += chunk) {
    double dx = 0, dy = 0, dz = 0;
    for (std::size_t i = start; i < start + chunk; ++i) {
      dx += std::abs(trace.x[i]);
      dy += std::abs(trace.y[i]);
      dz += std::abs(trace.z[i] - 1024.0);
    }
    const double n = static_cast<double>(chunk);
    series.add_row({util::TablePrinter::num(trace.time_at(start), 0),
                    util::TablePrinter::num(dx / n, 1),
                    util::TablePrinter::num(dy / n, 1),
                    util::TablePrinter::num(dz / n, 1)});
  }
  series.print(std::cout);
  std::cout << "\nShape check vs paper: z mean within 1024 +/- 40 counts, "
               "x/y means within +/- 40 counts,\nall axes show visible wave "
               "fluctuation (std > 15 counts).\n";
  return 0;
}
