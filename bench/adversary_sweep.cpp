// Adversary sweep: detection recall, forged-decision acceptance and
// quarantine behaviour as the fraction of compromised radios grows,
// defended (wsn/defense plausibility ledgers at the sink and static
// heads) vs undefended, on identical attack plans.
//
// The attack mix cycles per compromised radio:
//   0: decision forgery impersonating every static head with far-future
//      sequence numbers (poisons the sink's dedup windows so legitimate
//      relayed decisions are silently eaten), plus passive replay;
//   1: report forgery with sloppy (attacker-anchored) positions;
//   2: node replication — a clone racing an ordinary victim's identity;
//   3: beacon spoofing that resurrects a crashed node in nearby tables.
//
// Emits schema-stable JSON ("adversary_curve": one point per attacker
// fraction with "defended"/"undefended" arms). Built-in acceptance gates
// (the binary is wired into ctest under the `robustness` label):
//   1. at the point nearest 20 % compromised, defended recall must exceed
//      undefended recall by at least 0.1;
//   2. the attack-free defended run must quarantine nobody (zero
//      defense.quarantines, zero defense.false_quarantines);
//   3. forged-identity decisions accepted at the defended sink must not
//      exceed the undefended count anywhere on the curve.
//
//   adversary_sweep [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/sid_system.h"
#include "util/rng.h"
#include "wsn/faults.h"

namespace {

using namespace sid;

struct SweepSettings {
  std::size_t rows = 6;
  std::size_t cols = 6;
  double duration_s = 220.0;
  int trials = 3;
  std::vector<double> attacker_fractions{0.0, 0.1, 0.2, 0.3};
};

struct ArmPoint {
  int detections = 0;
  int trials = 0;
  /// Intrusion decisions accepted at the sink whose claimed head the
  /// attack plan implicates (forged identities that got through).
  std::uint64_t false_accepts = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t false_quarantines = 0;
  std::uint64_t filtered = 0;
  std::uint64_t attack_messages = 0;
  double recall() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(detections) /
                             static_cast<double>(trials);
  }
};

struct SweepPoint {
  double fraction = 0.0;
  ArmPoint defended;
  ArmPoint undefended;
};

core::SidSystemConfig base_config(const SweepSettings& s,
                                  std::uint64_t seed) {
  core::SidSystemConfig cfg;
  cfg.network.rows = s.rows;
  cfg.network.cols = s.cols;
  cfg.network.seed = seed;
  cfg.scenario.seed = seed * 17;
  cfg.scenario.trace.duration_s = s.duration_s;
  cfg.scenario.detector.threshold_multiplier_m = 2.0;
  cfg.scenario.detector.anomaly_frequency_threshold = 0.5;
  cfg.cluster.collection_window_s = 70.0;
  cfg.cluster.min_reports = 4;
  return cfg;
}

/// Static cluster heads of the grid (cell centres for the default
/// static_cell_size = 3) — the aggregation identities worth impersonating.
std::vector<wsn::NodeId> static_heads(const core::SidSystemConfig& cfg) {
  std::vector<wsn::NodeId> heads;
  const std::size_t cell = cfg.static_cell_size;
  for (std::size_t r = 0; r < cfg.network.rows; r += cell) {
    for (std::size_t c = 0; c < cfg.network.cols; c += cell) {
      const std::size_t hr =
          std::min((r / cell) * cell + cell / 2, cfg.network.rows - 1);
      const std::size_t hc =
          std::min((c / cell) * cell + cell / 2, cfg.network.cols - 1);
      const auto id = static_cast<wsn::NodeId>(hr * cfg.network.cols + hc);
      if (std::find(heads.begin(), heads.end(), id) == heads.end()) {
        heads.push_back(id);
      }
    }
  }
  return heads;
}

/// Compromises `fraction` of the radios (never the sink, never the
/// to-be-crashed spoof victim) and builds the attack plan, deterministic
/// in `seed`. The spoof victim crashes mid-run so beacon spoofing has a
/// dead identity to resurrect.
void schedule_attacks(core::SidSystemConfig& cfg, double fraction,
                      std::uint64_t seed) {
  const std::size_t n = cfg.network.rows * cfg.network.cols;
  const auto count =
      static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5);
  if (count == 0) return;
  const auto crash_victim = static_cast<wsn::NodeId>(n - 2);
  cfg.network.faults.crashes.push_back(
      {crash_victim, 0.3 * cfg.scenario.trace.duration_s});

  const std::vector<wsn::NodeId> heads = static_heads(cfg);
  std::vector<wsn::NodeId> ordinary;  // clone-victim pool
  for (wsn::NodeId id = 1; id < n; ++id) {
    if (id != crash_victim &&
        std::find(heads.begin(), heads.end(), id) == heads.end()) {
      ordinary.push_back(id);
    }
  }

  std::vector<wsn::NodeId> candidates;
  for (wsn::NodeId id = 1; id < n; ++id) {
    if (id != crash_victim) candidates.push_back(id);
  }
  util::Rng rng(util::derive_seed(seed, 0xbad5eedULL));
  const double start_s = 20.0;  // before the first wake alarms
  const double end_s = cfg.scenario.trace.duration_s;
  for (std::size_t i = 0; i < count && !candidates.empty(); ++i) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(candidates.size()));
    const wsn::NodeId attacker = candidates[idx];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
    switch (i % 4) {
      case 0: {
        // Impersonate every static head toward the sink with far-future
        // sequence numbers; also capture and replay overheard traffic.
        for (const wsn::NodeId head : heads) {
          if (head == attacker) continue;
          wsn::ForgeryAttack atk;
          atk.attacker = attacker;
          atk.victim = head;
          atk.target = 0;
          atk.traffic = wsn::ForgedTraffic::kDecisions;
          atk.start_s = start_s;
          atk.end_s = end_s;
          atk.period_s = 6.0;
          atk.burst = 2;
          cfg.network.attacks.forgeries.push_back(atk);
        }
        wsn::ReplayAttack replay;
        replay.attacker = attacker;
        replay.capture_start_s = start_s;
        replay.capture_end_s = 0.6 * end_s;
        replay.replay_delay_s = 30.0;
        cfg.network.attacks.replays.push_back(replay);
        break;
      }
      case 1: {
        wsn::ForgeryAttack atk;
        atk.attacker = attacker;
        atk.victim = ordinary[attacker % ordinary.size()];
        atk.target = 0;
        atk.traffic = wsn::ForgedTraffic::kReports;
        atk.start_s = start_s;
        atk.end_s = end_s;
        atk.period_s = 5.0;
        atk.spoof_position = false;  // sloppy attacker: wrong anchor
        cfg.network.attacks.forgeries.push_back(atk);
        break;
      }
      case 2: {
        wsn::CloneAttack atk;
        atk.host = attacker;
        atk.cloned = ordinary[(attacker * 3 + 1) % ordinary.size()];
        if (atk.cloned == attacker) {
          atk.cloned = ordinary[(attacker * 3 + 2) % ordinary.size()];
        }
        atk.target = 0;
        atk.start_s = start_s;
        atk.end_s = end_s;
        atk.period_s = 5.0;
        cfg.network.attacks.clones.push_back(atk);
        break;
      }
      default: {
        wsn::BeaconSpoofAttack atk;
        atk.attacker = attacker;
        atk.spoofed = crash_victim;
        atk.start_s = 0.35 * end_s;  // after the victim crashed
        atk.end_s = end_s;
        atk.period_s = 5.0;
        cfg.network.attacks.beacon_spoofs.push_back(atk);
        break;
      }
    }
  }
}

ArmPoint run_arm(const SweepSettings& s, double fraction, bool defended) {
  ArmPoint arm;
  for (int trial = 0; trial < s.trials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(51 + trial);
    auto cfg = base_config(s, seed);
    schedule_attacks(cfg, fraction, seed);
    cfg.network.defense.enabled = defended;
    core::SidSystem system(cfg);
    const double grid_mid_x = 0.5 *
                              static_cast<double>(cfg.network.cols - 1) *
                              cfg.network.spacing_m;
    const auto ship = bench::crossing_ship(
        10.0, 86.0 + 2.0 * static_cast<double>(trial % 3), grid_mid_x);
    const auto result =
        system.run(std::vector<wake::ShipTrackConfig>{ship});
    ++arm.trials;
    bool detected = false;
    for (const auto& r : result.sink_reports) {
      if (!r.decision.intrusion) continue;
      // Ground truth by construction: every forged decision carries a
      // far-future sequence number (ForgeryAttack::seq_base = 1 << 20);
      // the real pipeline's per-head counters stay tiny. An accepted
      // far-future decision is a forgery that got through.
      if (r.decision.seq >= (1u << 20)) {
        ++arm.false_accepts;
      } else {
        detected = true;
      }
    }
    if (detected) ++arm.detections;
    const auto& net = result.network_stats;
    arm.quarantines += net.defense_quarantines;
    arm.false_quarantines += net.defense_false_quarantines;
    arm.filtered += net.defense_filtered + net.defense_drops;
    arm.attack_messages += net.attack_replays + net.attack_forgeries +
                           net.attack_clone_reports +
                           net.attack_beacon_spoofs;
  }
  return arm;
}

void emit_arm(const char* key, const ArmPoint& a, const char* suffix) {
  std::printf("\"%s\": {\"recall\": %.3f, \"detections\": %d, "
              "\"trials\": %d, \"false_accepts\": %llu, "
              "\"quarantines\": %llu, \"false_quarantines\": %llu, "
              "\"filtered\": %llu, \"attack_messages\": %llu}%s",
              key, a.recall(), a.detections, a.trials,
              static_cast<unsigned long long>(a.false_accepts),
              static_cast<unsigned long long>(a.quarantines),
              static_cast<unsigned long long>(a.false_quarantines),
              static_cast<unsigned long long>(a.filtered),
              static_cast<unsigned long long>(a.attack_messages), suffix);
}

}  // namespace

int main(int argc, char** argv) {
  SweepSettings settings;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // Tiny grid, two sweep points, enough to exercise every attack
      // class, the defense, and the gates inside a ctest/ASan budget.
      settings.rows = 4;
      settings.cols = 4;
      settings.duration_s = 160.0;
      settings.trials = 1;
      settings.attacker_fractions = {0.0, 0.2};
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::vector<SweepPoint> curve;
  for (const double fraction : settings.attacker_fractions) {
    SweepPoint point;
    point.fraction = fraction;
    point.defended = run_arm(settings, fraction, /*defended=*/true);
    point.undefended = run_arm(settings, fraction, /*defended=*/false);
    curve.push_back(point);
  }

  std::printf("{\n");
  std::printf("  \"grid\": \"%zux%zu\", \"trials_per_point\": %d, "
              "\"duration_s\": %.0f,\n",
              settings.rows, settings.cols, settings.trials,
              settings.duration_s);
  std::printf("  \"adversary_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::printf("    {\"attacker_fraction\": %.2f, ", curve[i].fraction);
    emit_arm("defended", curve[i].defended, ", ");
    emit_arm("undefended", curve[i].undefended, "}");
    std::printf("%s\n", i + 1 < curve.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  // Gate 1: at the point nearest 20 % compromised, the defense must buy
  // at least 10 recall points over the undefended baseline.
  std::size_t at = 0;
  for (std::size_t i = 0; i < settings.attacker_fractions.size(); ++i) {
    if (std::abs(settings.attacker_fractions[i] - 0.2) <
        std::abs(settings.attacker_fractions[at] - 0.2)) {
      at = i;
    }
  }
  if (settings.attacker_fractions[at] > 0.0) {
    const double gap =
        curve[at].defended.recall() - curve[at].undefended.recall();
    if (gap < 0.1) {
      std::fprintf(stderr,
                   "adversary_sweep: defended recall %.3f exceeds "
                   "undefended %.3f by only %.3f (< 0.1) at attacker "
                   "fraction %.2f\n",
                   curve[at].defended.recall(),
                   curve[at].undefended.recall(), gap,
                   settings.attacker_fractions[at]);
      return 1;
    }
  }

  // Gate 2: the attack-free defended run must quarantine nobody — the
  // defense may never tax an honest field.
  for (const auto& p : curve) {
    if (p.fraction == 0.0 && (p.defended.quarantines != 0 ||
                              p.defended.false_quarantines != 0)) {
      std::fprintf(stderr,
                   "adversary_sweep: attack-free defended run quarantined "
                   "%llu identities (%llu false)\n",
                   static_cast<unsigned long long>(p.defended.quarantines),
                   static_cast<unsigned long long>(
                       p.defended.false_quarantines));
      return 1;
    }
  }

  // Gate 3: the defense must never accept more forged-identity decisions
  // than the undefended baseline.
  for (const auto& p : curve) {
    if (p.defended.false_accepts > p.undefended.false_accepts) {
      std::fprintf(stderr,
                   "adversary_sweep: defended sink accepted %llu forged "
                   "decisions vs %llu undefended at fraction %.2f\n",
                   static_cast<unsigned long long>(p.defended.false_accepts),
                   static_cast<unsigned long long>(
                       p.undefended.false_accepts),
                   p.fraction);
      return 1;
    }
  }
  return 0;
}
