// Reproduces Table II: "The correlation coefficient with ship intrusion".
// Ship passes at different speeds cross the grid; C is computed per pass
// and averaged over the speeds, for M in {1, 2, 3} and 4-6 rows of 5
// nodes. Paper values: 0.47 .. 0.81, rising with M (false positives get
// filtered out) and falling with rows (distant rows see weaker trains).
#include <iostream>
#include <map>
#include <set>
#include <algorithm>

#include "bench_common.h"
#include "core/correlation.h"
#include "core/scenario.h"
#include "util/stats.h"
#include "wsn/network.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Table II",
      "Correlation coefficient C with ship intrusion, averaged over ship\n"
      "speeds (10 and 16 kn) and headings. 5 nodes per row, rows = 4..6,\n"
      "M = 1, 2, 3. Paper: 0.47..0.81, rising with M, falling with rows.");

  constexpr int kTrialsPerSpeed = 6;
  const std::vector<double> m_values{1.0, 2.0, 3.0};
  const std::vector<std::size_t> row_counts{4, 5, 6};
  const std::vector<double> speeds_knots{10.0, 16.0};

  std::map<std::pair<double, std::size_t>, util::RunningStats> cells;

  for (double m : m_values) {
    for (double speed : speeds_knots) {
      for (int trial = 0; trial < kTrialsPerSpeed; ++trial) {
        wsn::NetworkConfig net_cfg;
        net_cfg.rows = 6;
        net_cfg.cols = 5;
        net_cfg.seed = static_cast<std::uint64_t>(200 + trial);
        wsn::Network network(net_cfg);

        core::ScenarioConfig scen;
        scen.seed = static_cast<std::uint64_t>(5000 + trial) +
                    static_cast<std::uint64_t>(speed * 100);
        scen.trace.duration_s = 260.0;
        scen.detector.threshold_multiplier_m = m;
        scen.detector.anomaly_frequency_threshold = 0.40;

        // Heading varies per trial ("it travels through the network with
        // different angle and speeds").
        const double heading = 82.0 + 3.0 * trial;
        const double cross_x = 45.0 + 4.0 * trial;
        auto ship = bench::crossing_ship(speed, heading, cross_x);
        const auto ships = std::vector<wake::ShipTrackConfig>{ship};
        const auto run = core::simulate_node_reports(network, ships, scen);

        // The paper evaluates per test run: restrict to the pass window
        // (first wake arrival - 5 s .. last + 15 s) the way each sea
        // trial bounded its data.
        double first_arrival = 1e18, last_arrival = -1e18;
        for (const auto& truth : run.truths) {
          for (double a : truth.wake_arrivals) {
            first_arrival = std::min(first_arrival, a);
            last_arrival = std::max(last_arrival, a);
          }
        }
        std::vector<wsn::DetectionReport> all_reports;
        for (const auto& r : run.all_reports()) {
          if (r.onset_local_time_s >= first_arrival - 5.0 &&
              r.onset_local_time_s <= last_arrival + 15.0) {
            all_reports.push_back(r);
          }
        }

        for (std::size_t rows : row_counts) {
          std::vector<wsn::DetectionReport> subset;
          for (const auto& r : all_reports) {
            if (static_cast<std::size_t>(r.grid_row) < rows) {
              subset.push_back(r);
            }
          }
          // A qualifying cluster must span all `rows` rows (the paper's
          // cluster-level requirement); fewer reporting rows score 0.
          std::set<std::int32_t> reporting_rows;
          for (const auto& r : subset) reporting_rows.insert(r.grid_row);
          const auto deduped = core::dedup_strongest_per_node(subset);
          double c = 0.0;
          if (reporting_rows.size() >= rows) {
            if (const auto line = core::estimate_travel_line(deduped)) {
              c = core::compute_correlation(deduped, *line).c;
            }
          }
          cells[{m, rows}].add(c);
        }
      }
    }
  }

  util::TablePrinter table({"M", "rows=4", "rows=5", "rows=6"});
  for (double m : m_values) {
    std::vector<std::string> row{util::TablePrinter::num(m, 0)};
    for (std::size_t rows : row_counts) {
      row.push_back(util::TablePrinter::num(cells[{m, rows}].mean(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n(" << 2 * kTrialsPerSpeed
            << " passes per cell — 10 and 16 kn, varied headings; mean C "
               "with the default\nmean aggregation, DESIGN.md §4.3)\n"
            << "Shape check vs paper: C well above the no-ship Table I "
               "values and above the\n0.4 decision threshold at >= 4 rows; "
               "C rises with M.\n";
  return 0;
}
