// Reproduces Fig. 8: raw vs 1 Hz low-pass-filtered accelerometer signal
// during a ship pass. The raw trace is dominated by fast chop/slam
// fluctuation; after filtering, the background collapses and the wake
// train stands out as isolated spikes.
#include <iostream>

#include "bench_common.h"
#include "dsp/filter.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"
#include "util/stats.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Figure 8",
      "Raw vs 1 Hz low-pass-filtered z signal (counts, rest level "
      "removed)\nduring a 12 kn pass at 25 m. Expected shape: filtering "
      "shrinks the\nbackground several-fold while the wake spike "
      "survives, giving a much\nhigher spike-to-background ratio.");

  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = 777;
  const ocean::WaveField field(*spectrum, field_cfg);

  const auto ship = bench::crossing_ship(12.0, 90.0, 0.0, -400.0);
  const auto train =
      wake::make_wake_train(wake::ShipTrack(ship), {25.0, 0.0});

  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 400.0;
  trace_cfg.buoy.anchor = {25.0, 0.0};
  std::vector<wake::WakeTrain> trains{*train};
  const auto trace = sense::generate_trace(field, trains, trace_cfg);

  const auto raw = trace.z_centered();
  const auto filtered = dsp::lowpass_filter(raw, 1.0, 50.0);

  auto stats_for = [&](const std::vector<double>& signal) {
    util::RunningStats background;
    double wake_peak = 0.0;
    for (std::size_t i = 300; i < signal.size(); ++i) {
      if (trace.wake_active_at(i)) {
        wake_peak = std::max(wake_peak, std::abs(signal[i]));
      } else {
        background.add(std::abs(signal[i]));
      }
    }
    return std::pair{background, wake_peak};
  };

  const auto [raw_bg, raw_peak] = stats_for(raw);
  const auto [filt_bg, filt_peak] = stats_for(filtered);

  util::TablePrinter table({"signal", "background mean |dev|",
                            "background std", "wake peak |dev|",
                            "peak / background"});
  table.add_row({"raw", util::TablePrinter::num(raw_bg.mean(), 1),
                 util::TablePrinter::num(raw_bg.stddev(), 1),
                 util::TablePrinter::num(raw_peak, 1),
                 util::TablePrinter::num(raw_peak / raw_bg.mean(), 1)});
  table.add_row({"filtered (1 Hz)", util::TablePrinter::num(filt_bg.mean(), 1),
                 util::TablePrinter::num(filt_bg.stddev(), 1),
                 util::TablePrinter::num(filt_peak, 1),
                 util::TablePrinter::num(filt_peak / filt_bg.mean(), 1)});
  table.print(std::cout);

  std::cout << "\n25 s-average |filtered deviation| (counts) over the pass "
               "(wake arrives at "
            << util::TablePrinter::num(train->params().arrival_time_s, 1)
            << " s):\n";
  util::TablePrinter series({"t (s)", "raw |dev|", "filtered |dev|"});
  const std::size_t chunk = 25 * 50;
  for (std::size_t start = 0; start + chunk <= raw.size(); start += chunk) {
    double raw_sum = 0.0, filt_sum = 0.0;
    for (std::size_t i = start; i < start + chunk; ++i) {
      raw_sum += std::abs(raw[i]);
      filt_sum += std::abs(filtered[i]);
    }
    series.add_row({util::TablePrinter::num(trace.time_at(start), 0),
                    util::TablePrinter::num(raw_sum / chunk, 1),
                    util::TablePrinter::num(filt_sum / chunk, 1)});
  }
  series.print(std::cout);

  std::cout << "\nShape check vs paper: filtering shrinks the background "
               "(mean and std) by\n2-3x while the wake spike survives, so "
               "the filtered peak-to-background ratio\nis at least the raw "
               "one and the spike stands clear of the residual swell.\n";
  return 0;
}
