// Reproduces Fig. 11: "The relationship between anomaly frequency and
// success detection ratio" — the node-level successful-detection ratio
// (true alarms / all alarms) as a function of the required anomaly
// frequency a_f, for threshold multipliers M in {1, 1.5, 2, 2.5, 3}.
//
// Workload: a single buoy 25 m from the sailing line of a 10-knot boat,
// calm harbor water, 240 s per trial. Alarms whose onset falls within
// +/-5 s of the wake-front arrival are successful; everything else is a
// false alarm. Paper shape: the ratio rises with a_f and with M;
// at M = 2, a_f = 60 % the paper reports a ratio above 70 %.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/node_detector.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Figure 11",
      "Node-level successful detection ratio vs anomaly frequency "
      "threshold a_f,\nfor M in {1, 1.5, 2, 2.5, 3}. One node at D = 25 m, "
      "10 kn passes, 240 s trials.");

  const std::vector<double> m_values{1.0, 1.5, 2.0, 2.5, 3.0};
  const std::vector<double> af_values{0.40, 0.50, 0.60, 0.70, 0.80,
                                      0.90, 1.00};
  constexpr int kTrials = 24;
  constexpr double kMatchToleranceS = 5.0;

  // (M, af) -> {tp, fp}
  std::map<std::pair<double, double>, std::pair<int, int>> counts;

  for (int trial = 0; trial < kTrials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(9000 + trial);
    const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
    ocean::WaveFieldConfig field_cfg;
    field_cfg.seed = seed;
    const ocean::WaveField field(*spectrum, field_cfg);

    auto ship = bench::crossing_ship(10.0, 90.0, 0.0);
    ship.start_time_s = 10.0 + 1.7 * trial;  // vary the arrival phase
    const auto train =
        wake::make_wake_train(wake::ShipTrack(ship), {25.0, 0.0});

    sense::TraceConfig trace_cfg;
    trace_cfg.duration_s = 240.0;
    trace_cfg.buoy.anchor = {25.0, 0.0};
    trace_cfg.buoy.seed = seed * 3 + 1;
    trace_cfg.accel.seed = seed * 3 + 2;
    const std::vector<wake::WakeTrain> trains{*train};
    const auto trace = sense::generate_trace(field, trains, trace_cfg);
    const double arrival = train->params().arrival_time_s;

    for (double m : m_values) {
      for (double af : af_values) {
        core::NodeDetectorConfig det_cfg;
        det_cfg.threshold_multiplier_m = m;
        det_cfg.anomaly_frequency_threshold = af;
        core::NodeDetector detector(det_cfg);
        auto& [tp, fp] = counts[{m, af}];
        for (const auto& alarm : detector.process_trace(trace)) {
          if (std::abs(alarm.onset_time_s - arrival) <= kMatchToleranceS) {
            ++tp;
          } else {
            ++fp;
          }
        }
      }
    }
  }

  std::vector<std::string> header{"a_f (%)"};
  for (double m : m_values) {
    header.push_back("M=" + util::TablePrinter::num(m, 1));
  }
  util::TablePrinter table(header);
  for (double af : af_values) {
    std::vector<std::string> row{util::TablePrinter::num(af * 100.0, 0)};
    for (double m : m_values) {
      const auto& [tp, fp] = counts[{m, af}];
      const int total = tp + fp;
      row.push_back(total == 0
                        ? "-"
                        : util::TablePrinter::num(
                              static_cast<double>(tp) / total, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n('-' = no alarms at all at that operating point; "
            << kTrials << " trials per cell)\n"
            << "Shape check vs paper: the ratio increases with a_f and "
               "with M; the paper\nreports > 0.70 at M = 2, a_f = 60 %.\n";
  return 0;
}
