// Reproduces Fig. 6: 2048-point (40.96 s) STFT of the z-axis signal.
// (a) ocean only: one high, narrow spectral peak at the swell frequency;
// (b) ocean + ship: additional peaks / raised energy away from the swell
// peak. The harness prints the dominant peaks of both spectra and the
// band-energy contrast.
#include <iostream>

#include "bench_common.h"
#include "dsp/features.h"
#include "dsp/stft.h"
#include "ocean/wave_field.h"
#include "ocean/wave_spectrum.h"
#include "sensing/trace.h"
#include "shipwave/wave_train.h"

namespace {

std::vector<double> record(bool with_ship, std::uint64_t seed) {
  using namespace sid;
  const auto spectrum = ocean::make_sea_spectrum(ocean::SeaState::kCalm);
  ocean::WaveFieldConfig field_cfg;
  field_cfg.seed = seed;
  const ocean::WaveField field(*spectrum, field_cfg);

  sense::TraceConfig trace_cfg;
  trace_cfg.duration_s = 120.0;
  trace_cfg.buoy.anchor = {25.0, 0.0};
  trace_cfg.buoy.seed = seed + 1;
  trace_cfg.accel.seed = seed + 2;

  std::vector<wake::WakeTrain> trains;
  if (with_ship) {
    const auto ship = bench::crossing_ship(12.0, 90.0, 0.0, -250.0);
    if (auto train = wake::make_wake_train(wake::ShipTrack(ship),
                                           {25.0, 0.0})) {
      trains.push_back(*train);
    }
  }
  return sense::generate_trace(field, trains, trace_cfg).z_centered();
}

}  // namespace

int main() {
  using namespace sid;
  bench::print_header(
      "Figure 6",
      "2048-point STFT (40.96 s at 50 Hz) of the z signal.\n"
      "(a) ocean only -> single dominant swell peak;\n"
      "(b) ocean + 12 kn ship at 25 m -> extra peaks and several times "
      "the wave-band energy.");

  for (bool with_ship : {false, true}) {
    const auto rec = record(with_ship, 2468);
    const std::size_t start = rec.size() / 2 - 1024;
    auto power = dsp::frame_power_spectrum(
        std::span<const double>(rec).subspan(start, 2048),
        dsp::WindowType::kHann);
    // Wave band only (the paper's axis runs 0-5 Hz, energy below ~2 Hz).
    power.resize(static_cast<std::size_t>(2.5 * 2048 / 50.0) + 1);

    std::cout << "\n--- " << (with_ship ? "(b) ocean + ship" : "(a) ocean only")
              << " ---\n";
    const auto peaks = dsp::find_peaks(power, 50.0, 2048, 0.10, 3);
    util::TablePrinter table({"peak", "frequency (Hz)", "power",
                              "relative to max"});
    const double max_power = peaks.empty() ? 1.0 : peaks.front().power;
    for (std::size_t i = 0; i < std::min<std::size_t>(peaks.size(), 6); ++i) {
      table.add_row({std::to_string(i + 1),
                     util::TablePrinter::num(peaks[i].frequency_hz, 3),
                     util::TablePrinter::num(peaks[i].power, 0),
                     util::TablePrinter::num(peaks[i].power / max_power, 2)});
    }
    table.print(std::cout);

    const auto features = dsp::extract_spectral_features(power, 50.0, 2048);
    double band_energy = 0.0;
    for (std::size_t k = 1; k < power.size(); ++k) band_energy += power[k];
    std::cout << "wave-band energy = "
              << util::TablePrinter::num(band_energy, 0)
              << ", peak concentration = "
              << util::TablePrinter::num(features.concentration, 3)
              << ", spectral entropy = "
              << util::TablePrinter::num(features.entropy_bits, 2)
              << " bits\n";
  }

  std::cout << "\nShape check vs paper: the ship frame has higher wave-band "
               "energy and more\nsignificant peaks than the ocean-only "
               "frame (Fig. 6b vs 6a).\n";
  return 0;
}
