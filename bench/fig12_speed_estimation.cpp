// Reproduces Fig. 12: "Ship speed estimation" — for ship speeds of about
// 10 and 16 knots, the estimated speed from four deployed nodes
// (deployment distance D = 25 m, Eq. 16) against the actual speed.
// Paper: 10 kn tests estimate 8-12 kn, 16 kn tests estimate 15-18 kn;
// errors stay within 20 % (sources: curved travel line, ~2 m node drift).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/scenario.h"
#include "core/speed_estimator.h"
#include "util/stats.h"
#include "wsn/network.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Figure 12",
      "Ship speed estimation from wake-arrival timestamps at a 2x2 node\n"
      "block, D = 25 m, theta = 20 deg (Eq. 16). Full pipeline: synthetic\n"
      "sea + wandering track -> node detection -> onset timestamps ->\n"
      "inversion. Paper: 10 kn -> 8-12 kn, 16 kn -> 15-18 kn, error "
      "< 20 %.");

  constexpr int kTrials = 14;
  util::TablePrinter table({"actual (kn)", "trials used", "est min (kn)",
                            "est mean (kn)", "est max (kn)",
                            "mean |error| %", "max |error| %"});

  for (double speed : {10.0, 16.0}) {
    util::RunningStats estimates;
    util::RunningStats abs_errors;
    int used = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      wsn::NetworkConfig net_cfg;
      net_cfg.rows = 6;
      net_cfg.cols = 6;
      net_cfg.seed = static_cast<std::uint64_t>(40 + trial);
      wsn::Network network(net_cfg);

      core::ScenarioConfig scen;
      scen.seed = static_cast<std::uint64_t>(7000 + trial) +
                  static_cast<std::uint64_t>(speed * 10);
      scen.trace.duration_s = 260.0;
      scen.detector.threshold_multiplier_m = 2.0;
      scen.detector.anomaly_frequency_threshold = 0.5;

      // "It travels through the network with different angle and speeds";
      // the travel line is "not really a straight line due to the sea
      // waves" -> wander enabled.
      const double heading = 80.0 + 1.5 * trial;
      auto ship = bench::crossing_ship(speed, heading, 55.0 + 2.0 * trial);
      ship.wander_amplitude_m = 2.0;
      ship.wander_period_s = 50.0;
      ship.seed = static_cast<std::uint64_t>(trial);

      const auto ships = std::vector<wake::ShipTrackConfig>{ship};
      const auto run = core::simulate_node_reports(network, ships, scen);

      // Keep only reports matching the pass (the paper records "the
      // reports which have the highest detected energy within the test
      // period"); then pick the strongest 2x2 block.
      std::vector<wsn::DetectionReport> reports;
      for (std::size_t i = 0; i < run.node_runs.size(); ++i) {
        for (std::size_t a = 0; a < run.node_runs[i].alarms.size(); ++a) {
          if (core::alarm_matches_truth(run.node_runs[i].alarms[a],
                                        run.truths[i].wake_arrivals, 6.0)) {
            reports.push_back(run.node_runs[i].reports[a]);
          }
        }
      }
      const auto quad = core::select_speed_quad(reports);
      if (!quad) continue;
      const auto est = core::estimate_speed_either_pairing(*quad);
      if (!est) continue;
      ++used;
      estimates.add(est->speed_knots);
      abs_errors.add(std::abs(est->speed_knots - speed) / speed * 100.0);
    }

    table.add_row({util::TablePrinter::num(speed, 0), std::to_string(used),
                   util::TablePrinter::num(estimates.min(), 1),
                   util::TablePrinter::num(estimates.mean(), 1),
                   util::TablePrinter::num(estimates.max(), 1),
                   util::TablePrinter::num(abs_errors.mean(), 1),
                   util::TablePrinter::num(abs_errors.max(), 1)});
  }
  table.print(std::cout);

  std::cout << "\nShape check vs paper: estimates bracket the actual "
               "speed; the 16 kn runs\nestimate higher than the 10 kn "
               "runs; errors of the same order as the\npaper's 20 % "
               "bound.\n";
  return 0;
}
