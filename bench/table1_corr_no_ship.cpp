// Reproduces Table I: "The correlation coefficient without ship
// intrusion". The paper lowers the detection threshold to harvest false
// alarms, processes 5 nodes per row over 4-6 rows, and computes the
// spatio-temporal correlation coefficient C for M in {1, 2, 3}: all
// values are near zero (max 0.019) because false alarms carry no
// distance/time/energy ordering.
#include <iostream>
#include <map>
#include <set>

#include "bench_common.h"
#include "core/correlation.h"
#include "core/scenario.h"
#include "util/stats.h"
#include "wsn/network.h"

int main() {
  using namespace sid;
  bench::print_header(
      "Table I",
      "Correlation coefficient C without ship intrusion (false alarms "
      "only).\nLowered detection threshold, 5 nodes per row, rows = 4..6, "
      "M = 1, 2, 3.\nPaper values: 0.000 .. 0.019, falling as rows and M "
      "grow.");

  constexpr int kTrials = 12;
  const std::vector<double> m_values{1.0, 2.0, 3.0};
  const std::vector<std::size_t> row_counts{4, 5, 6};

  // Product aggregation is the literal Eq. 10/12 reading and matches the
  // near-zero Table I values; DESIGN.md §4.3 discusses the choice.
  core::CorrelationConfig corr_cfg;
  corr_cfg.aggregate = core::CorrelationAggregate::kProduct;

  std::map<std::pair<double, std::size_t>, util::RunningStats> cells;

  for (double m : m_values) {
    for (int trial = 0; trial < kTrials; ++trial) {
      wsn::NetworkConfig net_cfg;
      net_cfg.rows = 6;
      net_cfg.cols = 5;  // the paper's 5 nodes per row
      net_cfg.seed = static_cast<std::uint64_t>(100 + trial);
      wsn::Network network(net_cfg);

      core::ScenarioConfig scen;
      scen.seed = static_cast<std::uint64_t>(3000 + trial);
      scen.trace.duration_s = 300.0;
      scen.detector.threshold_multiplier_m = m;
      // "We low the threshold in order to have higher false alarm
      // reports": a permissive a_f requirement.
      scen.detector.anomaly_frequency_threshold = 0.30;
      scen.detector.refractory_s = 5.0;

      const auto run = core::simulate_node_reports(network, {}, scen);
      const auto all_reports = run.all_reports();

      for (std::size_t rows : row_counts) {
        // Restrict to the first `rows` grid rows.
        std::vector<wsn::DetectionReport> subset;
        for (const auto& r : all_reports) {
          if (static_cast<std::size_t>(r.grid_row) < rows) {
            subset.push_back(r);
          }
        }
        // A qualifying cluster must span all `rows` rows (the paper's
        // cluster-level requirement); fewer reporting rows score 0.
        std::set<std::int32_t> reporting_rows;
        for (const auto& r : subset) reporting_rows.insert(r.grid_row);
        const auto deduped = core::dedup_strongest_per_node(subset);
        double c = 0.0;
        if (reporting_rows.size() >= rows) {
        if (const auto line = core::estimate_travel_line(deduped)) {
          c = core::compute_correlation(deduped, *line, corr_cfg).c;
        }
        }
        cells[{m, rows}].add(c);
      }
    }
  }

  util::TablePrinter table({"M", "rows=4", "rows=5", "rows=6"});
  for (double m : m_values) {
    std::vector<std::string> row{util::TablePrinter::num(m, 0)};
    for (std::size_t rows : row_counts) {
      row.push_back(util::TablePrinter::num(cells[{m, rows}].mean(), 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n(" << kTrials << " trials per cell, mean C; product "
            << "aggregation as in Eq. 10/12)\n"
            << "Shape check vs paper: all entries near zero and far below "
               "the 0.4 decision\nthreshold; C does not grow with rows.\n";
  return 0;
}
