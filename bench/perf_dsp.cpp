// google-benchmark throughput of the DSP primitives: the on-node budget
// matters (iMote2-class hardware), so the kernels must be cheap.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_json_main.h"
#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/spectrum.h"
#include "dsp/stft.h"
#include "dsp/wavelet.h"
#include "util/rng.h"

namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed = 1) {
  sid::util::Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.normal();
  return out;
}

void BM_FftReal(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::fft_real(signal));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftReal)->Arg(256)->Arg(1024)->Arg(2048)->Arg(8192);

void BM_FftRealOnesided(benchmark::State& state) {
  // Half-size packed real transform — the throughput-first path; compare
  // against BM_FftReal at the same size for the split-radix gain.
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::fft_real_onesided(signal));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftRealOnesided)->Arg(256)->Arg(1024)->Arg(2048)->Arg(8192);

void BM_FftConvolve(benchmark::State& state) {
  const auto a = random_signal(static_cast<std::size_t>(state.range(0)), 2);
  const auto b = random_signal(201, 3);  // FIR-tap-sized kernel
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::fft_convolve(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftConvolve)->Arg(12000);

void BM_WelchPsd(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  sid::dsp::WelchConfig cfg;  // 1024-point segments, 512 overlap
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::welch_psd(signal, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WelchPsd)->Arg(32768);

void BM_PowerSpectrum2048(benchmark::State& state) {
  const auto signal = random_signal(2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::power_spectrum(signal));
  }
}
BENCHMARK(BM_PowerSpectrum2048);

void BM_Stft(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  sid::dsp::StftConfig cfg;  // 2048-point frames, hop 1024
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::stft(signal, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Stft)->Arg(8192)->Arg(32768);

void BM_MorletCwt(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  sid::dsp::CwtConfig cfg;
  cfg.num_scales = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::cwt_morlet(signal, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MorletCwt)->Arg(2048)->Arg(8192);

void BM_CausalButterworth(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  auto sections = sid::dsp::butterworth_lowpass(4, 1.0, 50.0);
  sid::dsp::IirCascade cascade(sections);
  for (auto _ : state) {
    cascade.reset();
    benchmark::DoNotOptimize(cascade.process_all(signal));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CausalButterworth)->Arg(12000);

void BM_FiltFilt(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  auto sections = sid::dsp::butterworth_lowpass(4, 1.0, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::filtfilt(sections, signal));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FiltFilt)->Arg(12000);

void BM_FirFilter(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  const auto taps = sid::dsp::fir_lowpass_design(1.0, 50.0, 201);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sid::dsp::fir_filter(signal, taps));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FirFilter)->Arg(12000);

}  // namespace

int main(int argc, char** argv) {
  return sid_bench_main(argc, argv, "BENCH_dsp.json");
}
