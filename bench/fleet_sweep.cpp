// Fleet-scale scaling sweep (ROADMAP #1): adjacency construction through
// the historical O(N^2) pairwise scan vs the uniform-grid spatial index,
// plus end-to-end beacon-plane throughput (events/sec) of the windowed
// sharded engine across field sizes and shard counts.
//
//   --smoke        tiny sizes, each workload exactly once — deterministic
//                  per-stage profile counts for the perf-trend gate
//   (default)      full sweep: adjacency 100 -> 100k anchors, beacon
//                  fields 100 -> ~100k nodes at 1 and 4 shards
//
// Every benchmark runs Iterations(1): one iteration is a full workload,
// and a fixed iteration count keeps the profile-registry counters in the
// --json-out dump reproducible (scripts/bench_compare.py diffs them
// against bench/baselines/BENCH_fleet_sweep.json with a tight count
// tolerance and a loose timing tolerance).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "bench_json_main.h"
#include "util/geometry.h"
#include "wsn/network.h"
#include "wsn/radio.h"
#include "wsn/spatial_index.h"

namespace {

using namespace sid;

// Beacon horizon for the fleet benchmarks (sim seconds). Short enough to
// keep the 100k-node point tractable, long enough for several beacon
// rounds per node.
constexpr double kBeaconHorizonS = 20.0;

// Square-ish anchor grid at the paper's 25 m deployment spacing.
std::vector<util::Vec2> grid_anchors(std::size_t n) {
  const auto cols =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<util::Vec2> anchors;
  anchors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    anchors.push_back({static_cast<double>(i % cols) * 25.0,
                       static_cast<double>(i / cols) * 25.0});
  }
  return anchors;
}

// The historical O(N^2) adjacency build: every pair, triangular. Kept
// here purely as the baseline the spatial index is measured against
// (EXPERIMENTS.md §fleet_sweep); production code must route range queries
// through wsn/spatial_index — the spatial-funnel lint bans this loop
// shape outside that module.
void BM_AdjacencyPairwise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<util::Vec2> anchors = grid_anchors(n);
  const wsn::Radio radio{wsn::RadioConfig{}};
  for (auto _ : state) {
    std::vector<std::vector<wsn::NodeId>> adjacency(n);
    for (std::size_t i = 0; i < n; ++i) {  // lint:allow spatial-funnel
      for (std::size_t j = i + 1; j < n; ++j) {
        if (radio.in_range(util::distance(anchors[i], anchors[j]))) {
          adjacency[i].push_back(static_cast<wsn::NodeId>(j));
          adjacency[j].push_back(static_cast<wsn::NodeId>(i));
        }
      }
    }
    benchmark::DoNotOptimize(adjacency);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Same adjacency lists via the uniform-grid index (build + N queries),
// the shape Network::build_adjacency uses. Byte-identity of the result
// to the pairwise loop is pinned by tests/spatial_index_test.cpp; this
// benchmark pins the sub-quadratic scaling.
void BM_AdjacencyIndexed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<util::Vec2> anchors = grid_anchors(n);
  const wsn::Radio radio{wsn::RadioConfig{}};
  const double range_m = radio.config().max_range_m;
  for (auto _ : state) {
    const wsn::SpatialIndex index(anchors, range_m);
    std::vector<std::vector<wsn::NodeId>> adjacency(n);
    std::vector<wsn::SpatialIndex::PointId> candidates;
    for (std::size_t i = 0; i < n; ++i) {
      index.query(anchors[i], range_m, candidates);
      for (const wsn::SpatialIndex::PointId j : candidates) {
        if (j == static_cast<wsn::SpatialIndex::PointId>(i)) continue;
        if (radio.in_range(util::distance(anchors[i], anchors[j]))) {
          adjacency[i].push_back(static_cast<wsn::NodeId>(j));
        }
      }
    }
    benchmark::DoNotOptimize(adjacency);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Beacon-plane throughput of a full self-healing field: range(0) is the
// grid side (nodes = side^2), range(1) the shard count. Construction
// (boot discovery + adjacency) is excluded from the timed region so
// items/sec reads as simulator events per wall second.
void BM_FleetBeacons(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  wsn::NetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.shards = static_cast<std::size_t>(state.range(1));
  std::int64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    wsn::Network net(cfg);
    state.ResumeTiming();
    net.start_beacons(kBeaconHorizonS);
    events += static_cast<std::int64_t>(net.run_events());
  }
  state.SetItemsProcessed(events);
  state.counters["nodes"] = static_cast<double>(side * side);
}

void register_benchmarks(bool smoke) {
  const std::vector<std::int64_t> adjacency_sizes =
      smoke ? std::vector<std::int64_t>{100, 1000}
            : std::vector<std::int64_t>{100, 1000, 10000};
  for (const std::int64_t n : adjacency_sizes) {
    benchmark::RegisterBenchmark("BM_AdjacencyPairwise", BM_AdjacencyPairwise)
        ->Arg(n)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  // The indexed build stays tractable well past where the pairwise scan
  // stops being runnable — full mode extends it to 100k anchors.
  std::vector<std::int64_t> indexed_sizes = adjacency_sizes;
  if (!smoke) indexed_sizes.push_back(100000);
  for (const std::int64_t n : indexed_sizes) {
    benchmark::RegisterBenchmark("BM_AdjacencyIndexed", BM_AdjacencyIndexed)
        ->Arg(n)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  const std::vector<std::int64_t> sides =
      smoke ? std::vector<std::int64_t>{10}
            : std::vector<std::int64_t>{10, 50, 100, 316};
  for (const std::int64_t side : sides) {
    for (const std::int64_t shards : {1, 4}) {
      benchmark::RegisterBenchmark("BM_FleetBeacons", BM_FleetBeacons)
          ->Args({side, shards})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Sizes depend on --smoke, so peek at the flag before registering;
  // sid_bench_main re-parses it for min-time / json-out handling.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  register_benchmarks(smoke);
  return sid_bench_main(argc, argv, "BENCH_fleet_sweep.json");
}
