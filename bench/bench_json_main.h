// Shared main() for the google-benchmark binaries. Adds two flags on top
// of the standard benchmark ones:
//
//   --smoke          fast CI mode: tiny min-time per benchmark, and the
//                    stage-timing dump defaults on
//   --json-out FILE  dump the obs profiling registry (per-stage wall-time
//                    histograms recorded by SID_PROFILE_STAGE while the
//                    benchmarks ran) as sid-metrics-v1 JSON
//
// The dump is what scripts/check_obs_schema.py validates in CI.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"

inline int sid_bench_main(int argc, char** argv, const char* default_out) {
  bool smoke = false;
  std::string json_out;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  // benchmark 1.7 takes plain seconds (no unit suffix).
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) {
    bench_args.push_back(min_time);
    if (json_out.empty()) json_out = default_out;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  sid::obs::reset_profile();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 1;
    }
    sid::obs::profile_registry().write_json(os, /*include_wall=*/true);
    os << '\n';
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return 0;
}
